//! Parser for the ISCAS `.bench` netlist format.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! n1 = NAND(a, b)
//! y  = NOT(n1)
//! ```

use crate::netlist::{BuildCircuitError, Circuit, CircuitBuilder, GateKind, NetId};
use std::collections::HashMap;

/// Error parsing a `.bench` netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// Malformed line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Unknown gate function name.
    UnknownFunction {
        /// 1-based line number.
        line: usize,
        /// The unrecognized function.
        function: String,
    },
    /// A referenced signal was never defined.
    UndefinedSignal {
        /// The missing signal name.
        name: String,
    },
    /// Structural validation failed after parsing.
    Build(BuildCircuitError),
}

impl std::fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::UnknownFunction { line, function } => {
                write!(f, "line {line}: unknown function {function:?}")
            }
            Self::UndefinedSignal { name } => write!(f, "undefined signal {name:?}"),
            Self::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildCircuitError> for ParseBenchError {
    fn from(e: BuildCircuitError) -> Self {
        Self::Build(e)
    }
}

fn gate_kind(name: &str) -> Option<GateKind> {
    match name.to_ascii_uppercase().as_str() {
        "NOT" | "INV" => Some(GateKind::Inv),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "AND" => Some(GateKind::And),
        "NAND" => Some(GateKind::Nand),
        "OR" => Some(GateKind::Or),
        "NOR" => Some(GateKind::Nor),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        _ => None,
    }
}

/// Parses `.bench` text into a validated [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseBenchError`] on syntax errors, unknown functions,
/// undefined signals or structural violations.
pub fn parse_bench(text: &str) -> Result<Circuit, ParseBenchError> {
    struct PendingGate {
        kind: GateKind,
        output: String,
        inputs: Vec<String>,
        line: usize,
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<PendingGate> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let s = raw.split('#').next().unwrap_or("").trim();
        if s.is_empty() {
            continue;
        }
        let upper = s.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT") {
            let name = parse_paren(rest, s, line)?;
            inputs.push(name);
            continue;
        }
        if let Some(rest) = upper.strip_prefix("OUTPUT") {
            let name = parse_paren(rest, s, line)?;
            outputs.push(name);
            continue;
        }
        // Assignment: out = FUNC(a, b, ...)
        let Some(eq) = s.find('=') else {
            return Err(ParseBenchError::Syntax {
                line,
                message: format!("expected assignment, got {s:?}"),
            });
        };
        let output = s[..eq].trim().to_string();
        let rhs = s[eq + 1..].trim();
        let Some(open) = rhs.find('(') else {
            return Err(ParseBenchError::Syntax {
                line,
                message: "missing '(' in gate expression".into(),
            });
        };
        let Some(close) = rhs.rfind(')') else {
            return Err(ParseBenchError::Syntax {
                line,
                message: "missing ')' in gate expression".into(),
            });
        };
        let func = rhs[..open].trim();
        let kind = gate_kind(func).ok_or_else(|| ParseBenchError::UnknownFunction {
            line,
            function: func.to_string(),
        })?;
        let args: Vec<String> = rhs[open + 1..close]
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if args.is_empty() {
            return Err(ParseBenchError::Syntax {
                line,
                message: "gate with no inputs".into(),
            });
        }
        gates.push(PendingGate {
            kind,
            output,
            inputs: args,
            line,
        });
    }

    // Build: inputs first, then gates in an order that defines outputs
    // before use (the builder interns output nets at gate-add time, so we
    // add gates in dependency order via simple fixed-point iteration).
    let mut builder = CircuitBuilder::new();
    let mut known: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        let id = builder.try_add_input(name)?;
        known.insert(name.clone(), id);
    }
    let mut remaining = gates;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut still = Vec::with_capacity(before);
        for g in remaining {
            if g.inputs.iter().all(|i| known.contains_key(i)) {
                let ins: Vec<NetId> = g.inputs.iter().map(|i| known[i]).collect();
                if !g.kind.arity_ok(ins.len()) {
                    return Err(ParseBenchError::Syntax {
                        line: g.line,
                        message: format!("{} with arity {}", g.kind, ins.len()),
                    });
                }
                let out = builder.try_add_gate(g.kind, &ins, &g.output)?;
                known.insert(g.output.clone(), out);
            } else {
                still.push(g);
            }
        }
        if still.len() == before {
            // No progress: an input is genuinely undefined (or cyclic).
            let missing = still
                .iter()
                .flat_map(|g| g.inputs.iter())
                .find(|i| !known.contains_key(*i))
                .cloned()
                .unwrap_or_else(|| still[0].output.clone());
            return Err(ParseBenchError::UndefinedSignal { name: missing });
        }
        remaining = still;
    }
    for name in &outputs {
        let id = known
            .get(name)
            .copied()
            .ok_or_else(|| ParseBenchError::UndefinedSignal { name: name.clone() })?;
        builder.mark_output(id);
    }
    Ok(builder.build()?)
}

fn parse_paren(rest: &str, original: &str, line: usize) -> Result<String, ParseBenchError> {
    let rest = rest.trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(ParseBenchError::Syntax {
            line,
            message: format!("expected NAME(signal), got {original:?}"),
        });
    }
    // Slice from the *original* line to preserve case.
    let open = original.find('(').expect("checked above");
    let close = original.rfind(')').expect("checked above");
    Ok(original[open + 1..close].trim().to_string())
}

/// Serializes a circuit back to `.bench` text (round-trip inverse of
/// [`parse_bench`] up to formatting).
#[must_use]
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    for &i in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.net_name(i)));
    }
    for &o in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.net_name(o)));
    }
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let func = match g.kind {
            GateKind::Inv => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        };
        let args: Vec<&str> = g.inputs.iter().map(|i| circuit.net_name(*i)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            circuit.net_name(g.output),
            func,
            args.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
# a tiny netlist
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y = NOT(n1)
";

    #[test]
    fn parses_small_netlist() {
        let c = parse_bench(SMALL).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.gates().len(), 2);
        // y = AND(a, b)
        assert_eq!(c.eval(&[true, true]), vec![true]);
        assert_eq!(c.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn out_of_order_definitions() {
        let text = "\
INPUT(a)
OUTPUT(y)
y = NOT(n1)
n1 = NOT(a)
";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.eval(&[true]), vec![true]);
    }

    #[test]
    fn error_on_unknown_function() {
        let text = "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
        assert!(matches!(
            parse_bench(text),
            Err(ParseBenchError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn error_on_undefined_signal() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n";
        assert!(matches!(
            parse_bench(text),
            Err(ParseBenchError::UndefinedSignal { .. })
        ));
    }

    #[test]
    fn error_on_garbage() {
        assert!(matches!(
            parse_bench("INPUT a\n"),
            Err(ParseBenchError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            parse_bench("y NOT(a)\n"),
            Err(ParseBenchError::Syntax { .. })
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\nINPUT(a)  # trailing\n\nOUTPUT(y)\ny = BUFF(a)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.gates().len(), 1);
    }

    #[test]
    fn round_trip() {
        let c = parse_bench(SMALL).unwrap();
        let text = to_bench(&c);
        let c2 = parse_bench(&text).unwrap();
        for v in 0..4u8 {
            let bits = vec![v & 1 == 1, v & 2 == 2];
            assert_eq!(c.eval(&bits), c2.eval(&bits));
        }
    }

    #[test]
    fn case_preserved_in_names() {
        let text = "INPUT(MixedCase)\nOUTPUT(Out1)\nOut1 = NOT(MixedCase)\n";
        let c = parse_bench(text).unwrap();
        assert!(c.find_net("MixedCase").is_some());
        assert!(c.find_net("mixedcase").is_none());
    }
}
