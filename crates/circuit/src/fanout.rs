//! Fan-out limiting by buffer insertion — the standard synthesis transform
//! that keeps gate loads within the characterized range. The paper's
//! prototype only provides models for fan-out 1 and 2; realistic netlists
//! (and the paper's future-work direction of "arbitrary fan-outs") keep
//! fan-outs low by buffering, which this pass performs with NOR-only
//! buffers (two single-input NORs), preserving the NOR-only property.

use std::collections::HashMap;

use crate::netlist::{Circuit, CircuitBuilder, GateKind, NetId};

/// Rewrites `circuit` so no net drives more than `max_fanout` gate inputs,
/// by inserting inverter-pair buffers (each a pair of 1-input NORs for
/// NOR-only circuits, [`GateKind::Inv`] pairs otherwise).
///
/// Primary outputs stay attached to the original nets; only gate inputs are
/// redistributed. The result computes the same boolean function.
///
/// # Panics
///
/// Panics if `max_fanout == 0`.
#[must_use]
pub fn limit_fanout(circuit: &Circuit, max_fanout: usize) -> Circuit {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    let nor_only = circuit.is_nor_only();
    let buf_kind = if nor_only {
        GateKind::Nor
    } else {
        GateKind::Inv
    };

    // Count *gate input* consumers per net and assign each consumer edge a
    // rank (order of appearance over gates in index order, for
    // determinism).
    let mut consumer_rank: HashMap<(NetId, usize), usize> = HashMap::new();
    let mut counts: HashMap<NetId, usize> = HashMap::new();
    for (gi, g) in circuit.gates().iter().enumerate() {
        for (slot, &i) in g.inputs.iter().enumerate() {
            let r = counts.entry(i).or_insert(0);
            consumer_rank.insert((i, gi * 8 + slot), *r);
            *r += 1;
        }
    }

    let mut b = CircuitBuilder::new();
    // map[net] = list of copies: copy 0 is the original; consumers with
    // rank r read copy `r / max_fanout`.
    let mut copies: HashMap<NetId, Vec<NetId>> = HashMap::new();
    let mut fresh = 0usize;

    // Copies are chained (copy i+1 is buffered from copy i), so every copy
    // including the original drives at most `max_fanout - 1` consumers plus
    // one chain link, except the last copy which takes `max_fanout`.
    let per_copy = max_fanout - 1;
    let make_copies = |b: &mut CircuitBuilder, fresh: &mut usize, net: NetId, mapped: NetId| {
        let n_consumers = counts.get(&net).copied().unwrap_or(0);
        let mut list = vec![mapped];
        if n_consumers > max_fanout {
            let groups = n_consumers.div_ceil(per_copy);
            let mut prev = mapped;
            for _ in 1..groups {
                *fresh += 1;
                let inv = b.add_gate(buf_kind, &[prev], &format!("__buf{fresh}_n"));
                *fresh += 1;
                let buf = b.add_gate(buf_kind, &[inv], &format!("__buf{fresh}"));
                list.push(buf);
                prev = buf;
            }
        }
        list
    };

    for &i in circuit.inputs() {
        let mapped = b.add_input(circuit.net_name(i));
        let list = make_copies(&mut b, &mut fresh, i, mapped);
        copies.insert(i, list);
    }
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let ins: Vec<NetId> = g
            .inputs
            .iter()
            .enumerate()
            .map(|(slot, &i)| {
                let rank = consumer_rank[&(i, gi * 8 + slot)];
                let list = &copies[&i];
                if list.len() == 1 {
                    list[0]
                } else {
                    list[(rank / (max_fanout - 1)).min(list.len() - 1)]
                }
            })
            .collect();
        let mapped = b.add_gate(g.kind, &ins, circuit.net_name(g.output));
        let list = make_copies(&mut b, &mut fresh, g.output, mapped);
        copies.insert(g.output, list);
    }
    for &o in circuit.outputs() {
        b.mark_output(copies[&o][0]);
    }
    b.build().expect("buffering preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn max_gate_fanout(c: &Circuit) -> usize {
        let fo = c.fanout_counts();
        // Count only gate-input loads for the check (outputs add 1 in
        // fanout_counts, so recompute directly).
        let mut counts = vec![0usize; c.net_count()];
        for g in c.gates() {
            for i in &g.inputs {
                counts[i.0] += 1;
            }
        }
        let _ = fo;
        counts.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn high_fanout_net_is_buffered() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let src = b.add_gate(GateKind::Nor, &[a], "src");
        for i in 0..9 {
            let g = b.add_gate(GateKind::Nor, &[src], &format!("load{i}"));
            b.mark_output(g);
        }
        let c = b.build().unwrap();
        let limited = limit_fanout(&c, 4);
        assert!(max_gate_fanout(&limited) <= 4);
        assert!(limited.is_nor_only());
        // Function preserved.
        for v in [false, true] {
            assert_eq!(c.eval(&[v]), limited.eval(&[v]));
        }
        // 9 loads at 3 per copy -> 3 copies -> 2 buffer pairs = 4 extras.
        assert_eq!(limited.gates().len(), c.gates().len() + 4);
    }

    #[test]
    fn low_fanout_untouched() {
        let c = crate::c17();
        let limited = limit_fanout(&c, 4);
        assert_eq!(limited.gates().len(), c.gates().len());
    }

    #[test]
    fn benchmarks_stay_equivalent_after_buffering() {
        let mut rng = StdRng::seed_from_u64(9);
        for name in ["c499"] {
            let bench = crate::Benchmark::by_name(name).unwrap();
            let limited = limit_fanout(&bench.nor_mapped, 4);
            assert!(max_gate_fanout(&limited) <= 4, "{name}");
            assert!(limited.is_nor_only());
            let n = bench.nor_mapped.inputs().len();
            for _ in 0..10 {
                let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(bench.nor_mapped.eval(&bits), limited.eval(&bits), "{name}");
            }
        }
    }

    #[test]
    fn buffered_inputs_work() {
        // A primary input with high fan-out gets buffered too.
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        for i in 0..7 {
            let g = b.add_gate(GateKind::Inv, &[a], &format!("g{i}"));
            b.mark_output(g);
        }
        let c = b.build().unwrap();
        let limited = limit_fanout(&c, 3);
        assert!(max_gate_fanout(&limited) <= 3);
        for v in [false, true] {
            assert_eq!(c.eval(&[v]), limited.eval(&[v]));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_max_rejected() {
        let _ = limit_fanout(&crate::c17(), 1);
    }
}
