//! Circuit loading with format auto-detection, plus the content hashing
//! the `sigserve` circuit cache keys on.
//!
//! Two on-disk formats exist in the workspace: ISCAS `.bench` netlists
//! ([`crate::parse_bench`]) and the JSON netlist serialization of
//! [`Circuit`] itself. [`load_circuit`] dispatches on the file extension
//! and falls back to sniffing the content (a JSON netlist begins with
//! `{`, a `.bench` file with a directive, comment or assignment), so
//! callers — `sigctl`, the experiment binaries — accept either format
//! from one flag.

use std::path::Path;

use crate::netlist::Circuit;
use crate::ParseBenchError;

/// The detected on-disk format of a circuit file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitFormat {
    /// ISCAS `.bench` netlist text.
    Bench,
    /// JSON serialization of [`Circuit`].
    Json,
}

impl std::fmt::Display for CircuitFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bench => f.write_str("bench"),
            Self::Json => f.write_str("json"),
        }
    }
}

/// Error loading a circuit from disk.
#[derive(Debug)]
pub enum LoadCircuitError {
    /// The file could not be read.
    Io(std::io::Error),
    /// `.bench` parsing failed.
    Bench(ParseBenchError),
    /// JSON parsing or validation failed.
    Json(serde_json::Error),
}

impl std::fmt::Display for LoadCircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read circuit file: {e}"),
            Self::Bench(e) => write!(f, "invalid .bench netlist: {e}"),
            Self::Json(e) => write!(f, "invalid JSON netlist: {e}"),
        }
    }
}

impl std::error::Error for LoadCircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Bench(e) => Some(e),
            Self::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for LoadCircuitError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Detects the format of circuit text: a leading `{` (after whitespace)
/// is the JSON netlist, anything else is `.bench` (whose lines start with
/// directives, comments or assignments — never `{`).
#[must_use]
pub fn sniff_format(text: &str) -> CircuitFormat {
    if text.trim_start().starts_with('{') {
        CircuitFormat::Json
    } else {
        CircuitFormat::Bench
    }
}

/// Parses circuit text in the given format.
///
/// # Errors
///
/// Returns [`LoadCircuitError`] on parse or validation failure (both
/// formats enforce the full [`crate::CircuitBuilder`] invariants).
pub fn parse_circuit(text: &str, format: CircuitFormat) -> Result<Circuit, LoadCircuitError> {
    match format {
        CircuitFormat::Bench => crate::parse_bench(text).map_err(LoadCircuitError::Bench),
        CircuitFormat::Json => serde_json::from_str(text).map_err(LoadCircuitError::Json),
    }
}

/// Loads a circuit from disk, auto-detecting the format: the `.bench` /
/// `.json` extension decides when present (case-insensitive); otherwise
/// the content is sniffed ([`sniff_format`]).
///
/// # Errors
///
/// Returns [`LoadCircuitError`] on I/O or parse failure.
pub fn load_circuit(path: impl AsRef<Path>) -> Result<Circuit, LoadCircuitError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let format = match path
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("bench") => CircuitFormat::Bench,
        Some("json") => CircuitFormat::Json,
        _ => sniff_format(&text),
    };
    parse_circuit(&text, format)
}

/// A streaming FNV-1a 64-bit hasher — the incremental form of
/// [`content_hash`], used to derive composite cache keys (the `sigserve`
/// circuit and program caches) without concatenating the key material
/// into one buffer first. Feeding the same bytes in any chunking yields
/// the same hash; [`ContentHasher::written`] reports the total byte
/// count so key consumers can pair hash and length.
///
/// # Example
///
/// ```
/// use sigcircuit::{content_hash, ContentHasher};
/// let mut h = ContentHasher::new();
/// h.update(b"nor-only;");
/// h.update(b"name:c17");
/// assert_eq!(h.written(), 17);
/// assert_eq!(h.finish(), content_hash(b"nor-only;name:c17"));
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    hash: u64,
    written: usize,
}

impl ContentHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            hash: Self::OFFSET,
            written: 0,
        }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
        self.written += bytes.len();
    }

    /// Total bytes fed so far.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// The hash of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64-bit hash of arbitrary bytes — the stable, dependency-free
/// content hash the `sigserve` circuit cache keys on. Not cryptographic;
/// cache consumers pair it with the input length to make accidental
/// collisions implausible.
#[must_use]
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = ContentHasher::new();
    h.update(bytes);
    h.finish()
}

impl Circuit {
    /// A cheap structural fingerprint: hashes the source data (net names,
    /// inputs, outputs, gate list) without serializing it. Equal circuits
    /// fingerprint equal; distinct circuits collide only with hash
    /// probability. Used by the `sigserve` cache to tag entries and by
    /// responses to echo which netlist was simulated.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = content_hash(b"sigcircuit-v1");
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.net_count() as u64);
        for i in 0..self.net_count() {
            mix(content_hash(self.net_name(crate::NetId(i)).as_bytes()));
        }
        for &i in self.inputs() {
            mix(i.0 as u64 + 1);
        }
        mix(u64::MAX); // separator between sections
        for &o in self.outputs() {
            mix(o.0 as u64 + 1);
        }
        mix(u64::MAX);
        for g in self.gates() {
            mix(content_hash(g.kind.to_string().as_bytes()));
            mix(g.output.0 as u64);
            for i in &g.inputs {
                mix(i.0 as u64 + 1);
            }
            mix(u64::MAX);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let y = b.add_gate(GateKind::Nor, &[a], "y");
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn sniffs_json_vs_bench() {
        assert_eq!(sniff_format("  \n{\"net_names\": []}"), CircuitFormat::Json);
        assert_eq!(sniff_format("INPUT(a)\n"), CircuitFormat::Bench);
        assert_eq!(sniff_format("# comment\nINPUT(a)\n"), CircuitFormat::Bench);
    }

    #[test]
    fn loads_bench_by_extension_and_by_sniff() {
        let dir = std::env::temp_dir().join("sigcircuit_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let c = tiny();
        let text = crate::to_bench(&c);
        for name in ["t.bench", "t.netlist"] {
            let path = dir.join(name);
            std::fs::write(&path, &text).unwrap();
            let loaded = load_circuit(&path).unwrap();
            assert_eq!(loaded, c, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_json_by_extension_and_by_sniff() {
        let dir = std::env::temp_dir().join("sigcircuit_loader_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let c = tiny();
        let text = serde_json::to_string(&c).unwrap();
        for name in ["t.json", "t.circuit"] {
            let path = dir.join(name);
            std::fs::write(&path, &text).unwrap();
            let loaded = load_circuit(&path).unwrap();
            assert_eq!(loaded, c, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_errors_are_structured() {
        assert!(matches!(
            load_circuit("/nonexistent/x.bench"),
            Err(LoadCircuitError::Io(_))
        ));
        let dir = std::env::temp_dir().join("sigcircuit_loader_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad_bench = dir.join("bad.bench");
        std::fs::write(&bad_bench, "y = FROB(a)\n").unwrap();
        assert!(matches!(
            load_circuit(&bad_bench),
            Err(LoadCircuitError::Bench(_))
        ));
        let bad_json = dir.join("bad.json");
        std::fs::write(&bad_json, "{\"net_names\": 3}").unwrap();
        assert!(matches!(
            load_circuit(&bad_json),
            Err(LoadCircuitError::Json(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_hash_is_stable_fnv1a() {
        // Reference FNV-1a vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let c = tiny();
        assert_eq!(c.fingerprint(), tiny().fingerprint());
        // Different output marking changes the fingerprint.
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let y = b.add_gate(GateKind::Nor, &[a], "y");
        let z = b.add_gate(GateKind::Nor, &[y], "z");
        b.mark_output(z);
        let c2 = b.build().unwrap();
        assert_ne!(c.fingerprint(), c2.fingerprint());
        // A renamed net changes it too.
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let y = b.add_gate(GateKind::Nor, &[a], "y2");
        b.mark_output(y);
        assert_ne!(c.fingerprint(), b.build().unwrap().fingerprint());
    }

    #[test]
    fn fingerprint_survives_serde_round_trip() {
        let bench = crate::Benchmark::by_name("c17").unwrap();
        let c = &bench.nor_mapped;
        let back: Circuit = serde_json::from_str(&serde_json::to_string(c).unwrap()).unwrap();
        assert_eq!(c.fingerprint(), back.fingerprint());
    }
}
