//! Technology mapping for the simulated cell sets.
//!
//! Two mapping policies exist ([`MappingPolicy`]):
//!
//! * [`to_nor_only`] — the paper's Sec. V-B mapping ("each non-NOR gate is
//!   replaced by an equivalent circuit consisting of just NOR gates",
//!   exploiting that NOR is functionally complete),
//! * [`to_native_cells`] — the multi-cell library mapping: INV, NOR (1–3
//!   inputs), NAND2, AND2 and OR2 are kept as first-class simulated cells;
//!   only unsupported shapes (XOR/XNOR, arity > 2 for NAND/AND/OR,
//!   arity > 3 NOR, BUF) are decomposed. On NAND-heavy netlists like
//!   c17/c1355 this avoids the 2–4× NOR-expansion blow-up entirely.
//!
//! The mapping uses the textbook NOR realizations (single-input NORs act as
//! inverters, the form the prototype simulator supports):
//!
//! * `INV(a)        = NOR(a)`
//! * `OR(a, b)      = NOR(NOR(a, b))`
//! * `AND(a, b)     = NOR(NOR(a), NOR(b))`
//! * `NAND(a, b)    = NOR(AND(a, b))` — 4 NORs, so ISCAS c17's six NAND2s
//!   map to the 24 NOR gates Table I reports,
//! * `XOR(a, b)` — the 5-NOR realization, `XNOR(a, b)` the 4-NOR prefix.
//!
//! Wider gates are first decomposed into balanced binary trees.

use crate::netlist::{Circuit, CircuitBuilder, GateKind, NetId};

/// Options for [`to_nor_only`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NorMappingOptions {
    /// Share one inverter per inverted net instead of emitting a fresh
    /// single-input NOR at each use. The paper's gate counts (c17 → 24)
    /// correspond to *no* sharing, so this defaults to `false`; enabling it
    /// is an ablation knob.
    pub share_inverters: bool,
    /// Expand XOR/XNOR into 4 NAND2 *before* NOR mapping, reproducing the
    /// structural difference between ISCAS c499 (XOR primitives) and c1355
    /// (NAND-expanded XORs).
    pub expand_xor_to_nand: bool,
}

/// State of one NOR-mapping run.
struct Mapper<'a> {
    builder: &'a mut CircuitBuilder,
    options: NorMappingOptions,
    fresh: usize,
    /// Cache for shared inverters (only when `share_inverters`).
    inverted: std::collections::HashMap<NetId, NetId>,
}

impl Mapper<'_> {
    fn fresh_name(&mut self, tag: &str) -> String {
        self.fresh += 1;
        format!("__nor{}_{}", self.fresh, tag)
    }

    fn nor(&mut self, inputs: &[NetId], tag: &str) -> NetId {
        let name = self.fresh_name(tag);
        self.builder.add_gate(GateKind::Nor, inputs, &name)
    }

    fn inv(&mut self, a: NetId) -> NetId {
        if self.options.share_inverters {
            if let Some(&n) = self.inverted.get(&a) {
                return n;
            }
        }
        let n = self.nor(&[a], "inv");
        if self.options.share_inverters {
            self.inverted.insert(a, n);
        }
        n
    }

    fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        let n = self.nor(&[a, b], "nor");
        self.inv(n)
    }

    fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        let na = self.inv(a);
        let nb = self.inv(b);
        self.nor(&[na, nb], "and")
    }

    fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        let and = self.and2(a, b);
        self.inv(and)
    }

    fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        if self.options.expand_xor_to_nand {
            // XOR via 4 NAND2: n1 = NAND(a,b); out = NAND(NAND(a,n1), NAND(b,n1)).
            let n1 = self.nand2(a, b);
            let n2 = self.nand2(a, n1);
            let n3 = self.nand2(b, n1);
            return self.nand2(n2, n3);
        }
        let xnor = self.xnor_core(a, b);
        self.inv(xnor)
    }

    fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        if self.options.expand_xor_to_nand {
            let x = self.xor2(a, b);
            return self.inv(x);
        }
        self.xnor_core(a, b)
    }

    /// XNOR in 4 NORs: NOR(NOR(a, n), NOR(b, n)) with n = NOR(a, b).
    fn xnor_core(&mut self, a: NetId, b: NetId) -> NetId {
        let n1 = self.nor(&[a, b], "x1");
        let n2 = self.nor(&[a, n1], "x2");
        let n3 = self.nor(&[b, n1], "x3");
        self.nor(&[n2, n3], "x4")
    }

    /// Balanced binary reduction with `f`.
    fn tree(&mut self, inputs: &[NetId], f: fn(&mut Self, NetId, NetId) -> NetId) -> NetId {
        assert!(!inputs.is_empty());
        let mut layer: Vec<NetId> = inputs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(f(self, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    fn map_gate(&mut self, kind: GateKind, ins: &[NetId]) -> NetId {
        match kind {
            GateKind::Inv => self.inv(ins[0]),
            GateKind::Buf => {
                let n = self.inv(ins[0]);
                self.inv(n)
            }
            GateKind::Nor => {
                if ins.len() <= 2 {
                    self.nor(ins, "keep")
                } else {
                    // NOR(xs) = INV(OR-tree): build the OR of all but keep
                    // the final stage as a plain NOR to save the inverter.
                    let left = self.tree(&ins[..ins.len() - 1], Self::or2);
                    self.nor(&[left, ins[ins.len() - 1]], "norn")
                }
            }
            GateKind::Or => self.tree(ins, Self::or2),
            GateKind::And => self.tree(ins, Self::and2),
            GateKind::Nand => {
                let and = self.tree(ins, Self::and2);
                self.inv(and)
            }
            GateKind::Xor => self.xor2(ins[0], ins[1]),
            GateKind::Xnor => self.xnor2(ins[0], ins[1]),
        }
    }
}

/// Maps a circuit to NOR-only form (1- and 2-input NOR gates).
///
/// The result computes the same boolean function on the same primary
/// inputs/outputs; gate count grows per the realizations listed in the
/// module docs.
///
/// # Panics
///
/// Panics only on internal name collisions, which cannot happen for
/// circuits produced by [`CircuitBuilder`].
#[must_use]
pub fn to_nor_only(circuit: &Circuit, options: NorMappingOptions) -> Circuit {
    let mut builder = CircuitBuilder::new();
    let mut map: Vec<Option<NetId>> = vec![None; circuit.net_count()];
    for &i in circuit.inputs() {
        let id = builder.add_input(circuit.net_name(i));
        map[i.0] = Some(id);
    }
    let mut mapper = Mapper {
        builder: &mut builder,
        options,
        fresh: 0,
        inverted: std::collections::HashMap::new(),
    };
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let ins: Vec<NetId> = g
            .inputs
            .iter()
            .map(|i| map[i.0].expect("topological order guarantees mapped inputs"))
            .collect();
        let out = mapper.map_gate(g.kind, &ins);
        map[g.output.0] = Some(out);
    }
    for &o in circuit.outputs() {
        let mapped = map[o.0].expect("outputs are driven");
        builder.mark_output(mapped);
    }
    builder.build().expect("mapping preserves validity")
}

/// Which cell set a circuit is mapped onto before simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingPolicy {
    /// Map everything onto 1-/2-input NOR gates (the paper's prototype
    /// form; [`to_nor_only`]). The historical default.
    #[default]
    NorOnly,
    /// Keep the native library cells (INV, NOR1–3, NAND2, AND2, OR2) and
    /// decompose only unsupported shapes ([`to_native_cells`]).
    Native,
}

impl MappingPolicy {
    /// The policy's canonical wire/CLI name (`nor-only` / `native`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::NorOnly => "nor-only",
            Self::Native => "native",
        }
    }

    /// Parses a canonical policy name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "nor-only" => Some(Self::NorOnly),
            "native" => Some(Self::Native),
            _ => None,
        }
    }
}

impl std::fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `true` if a gate of this kind and arity is a first-class cell of the
/// native library (simulable without decomposition): INV, NOR with 1–3
/// inputs, and the two-input NAND/AND/OR cells.
#[must_use]
pub fn is_native_cell(kind: GateKind, arity: usize) -> bool {
    match kind {
        GateKind::Inv => arity == 1,
        GateKind::Nor => (1..=3).contains(&arity),
        GateKind::Nand | GateKind::And | GateKind::Or => arity == 2,
        GateKind::Buf | GateKind::Xor | GateKind::Xnor => false,
    }
}

/// `true` if every gate of `circuit` is a native library cell (see
/// [`is_native_cell`]) — such a circuit passes [`to_native_cells`]
/// unchanged.
#[must_use]
pub fn is_native_only(circuit: &Circuit) -> bool {
    circuit
        .gates()
        .iter()
        .all(|g| is_native_cell(g.kind, g.inputs.len()))
}

/// Maps a circuit with the given policy: [`to_nor_only`] for
/// [`MappingPolicy::NorOnly`], [`to_native_cells`] for
/// [`MappingPolicy::Native`] (both with the given NOR-mapping ablation
/// options, which only the NOR policy consults).
#[must_use]
pub fn map_with_policy(
    circuit: &Circuit,
    policy: MappingPolicy,
    options: NorMappingOptions,
) -> Circuit {
    match policy {
        MappingPolicy::NorOnly => to_nor_only(circuit, options),
        MappingPolicy::Native => to_native_cells(circuit),
    }
}

/// State of one native-cell mapping run.
struct CellMapper<'a> {
    builder: &'a mut CircuitBuilder,
    fresh: usize,
}

impl CellMapper<'_> {
    fn fresh_name(&mut self, tag: &str) -> String {
        self.fresh += 1;
        format!("__cell{}_{}", self.fresh, tag)
    }

    fn gate(&mut self, kind: GateKind, inputs: &[NetId], tag: &str) -> NetId {
        let name = self.fresh_name(tag);
        self.builder.add_gate(kind, inputs, &name)
    }

    fn inv(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Inv, &[a], "inv")
    }

    /// Balanced binary tree of 2-input gates of one kind.
    fn tree2(&mut self, kind: GateKind, inputs: &[NetId], tag: &str) -> NetId {
        assert!(!inputs.is_empty());
        let mut layer: Vec<NetId> = inputs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, pair, tag));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// XOR via the native 4-NAND2 realization (the c1355 structure).
    fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        let n1 = self.gate(GateKind::Nand, &[a, b], "x1");
        let n2 = self.gate(GateKind::Nand, &[a, n1], "x2");
        let n3 = self.gate(GateKind::Nand, &[b, n1], "x3");
        self.gate(GateKind::Nand, &[n2, n3], "x4")
    }

    fn map_gate(&mut self, kind: GateKind, ins: &[NetId], out_name: &str) -> NetId {
        if is_native_cell(kind, ins.len()) {
            // First-class cell: re-emit as-is under its original output
            // name, so fully native netlists (c17, c1355) keep every net
            // name through the mapping.
            return self.builder.add_gate(kind, ins, out_name);
        }
        match kind {
            GateKind::Buf => {
                // No buffer cell in the library: an inverter pair.
                let n = self.inv(ins[0]);
                self.inv(n)
            }
            GateKind::And => self.tree2(GateKind::And, ins, "and"),
            GateKind::Or => self.tree2(GateKind::Or, ins, "or"),
            GateKind::Nand => {
                // NAND(xs) = NAND(AND-tree(all but last), last): the final
                // stage stays a native NAND2.
                let left = self.tree2(GateKind::And, &ins[..ins.len() - 1], "nand_and");
                self.gate(GateKind::Nand, &[left, ins[ins.len() - 1]], "nand")
            }
            GateKind::Nor => {
                // Arity > 3: OR-tree of all but last, final native NOR2.
                let left = self.tree2(GateKind::Or, &ins[..ins.len() - 1], "nor_or");
                self.gate(GateKind::Nor, &[left, ins[ins.len() - 1]], "nor")
            }
            GateKind::Xor => self.xor2(ins[0], ins[1]),
            GateKind::Xnor => {
                let x = self.xor2(ins[0], ins[1]);
                self.inv(x)
            }
            GateKind::Inv => unreachable!("INV of arity 1 is native"),
        }
    }
}

/// Maps a circuit onto the native cell library (INV, NOR1–3, NAND2, AND2,
/// OR2): supported gates pass through one-to-one, unsupported shapes are
/// decomposed (XOR → 4 NAND2, XNOR → XOR + INV, BUF → 2 INV, wide
/// NAND/AND/OR/NOR → 2-input trees).
///
/// The result computes the same boolean function on the same primary
/// inputs/outputs and satisfies [`is_native_only`]. A circuit that is
/// already native-only keeps its gate count (gates are re-emitted
/// unchanged).
///
/// # Panics
///
/// Panics only on internal name collisions, which cannot happen for
/// circuits produced by [`CircuitBuilder`].
#[must_use]
pub fn to_native_cells(circuit: &Circuit) -> Circuit {
    let mut builder = CircuitBuilder::new();
    let mut map: Vec<Option<NetId>> = vec![None; circuit.net_count()];
    for &i in circuit.inputs() {
        let id = builder.add_input(circuit.net_name(i));
        map[i.0] = Some(id);
    }
    let mut mapper = CellMapper {
        builder: &mut builder,
        fresh: 0,
    };
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let ins: Vec<NetId> = g
            .inputs
            .iter()
            .map(|i| map[i.0].expect("topological order guarantees mapped inputs"))
            .collect();
        let out = mapper.map_gate(g.kind, &ins, circuit.net_name(g.output));
        map[g.output.0] = Some(out);
    }
    for &o in circuit.outputs() {
        let mapped = map[o.0].expect("outputs are driven");
        builder.mark_output(mapped);
    }
    builder.build().expect("mapping preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitBuilder;
    use proptest::prelude::*;

    fn exhaustive_equiv(a: &Circuit, b: &Circuit) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let n = a.inputs().len();
        assert!(n <= 12, "too many inputs for exhaustive check");
        for v in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits), "mismatch at {bits:?}");
        }
    }

    fn single_gate(kind: GateKind, arity: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let ins: Vec<NetId> = (0..arity).map(|i| b.add_input(&format!("i{i}"))).collect();
        let out = b.add_gate(kind, &ins, "out");
        b.mark_output(out);
        b.build().unwrap()
    }

    #[test]
    fn every_kind_maps_equivalently() {
        let cases = [
            (GateKind::Inv, 1),
            (GateKind::Buf, 1),
            (GateKind::And, 2),
            (GateKind::And, 5),
            (GateKind::Nand, 2),
            (GateKind::Nand, 4),
            (GateKind::Or, 2),
            (GateKind::Or, 7),
            (GateKind::Nor, 2),
            (GateKind::Nor, 3),
            (GateKind::Nor, 6),
            (GateKind::Xor, 2),
            (GateKind::Xnor, 2),
        ];
        for (kind, arity) in cases {
            let c = single_gate(kind, arity);
            for opts in [
                NorMappingOptions::default(),
                NorMappingOptions {
                    share_inverters: true,
                    ..Default::default()
                },
                NorMappingOptions {
                    expand_xor_to_nand: true,
                    ..Default::default()
                },
            ] {
                let m = to_nor_only(&c, opts);
                assert!(m.is_nor_only(), "{kind} arity {arity} not NOR-only");
                exhaustive_equiv(&c, &m);
            }
        }
    }

    #[test]
    fn nand2_costs_four_nors() {
        let c = single_gate(GateKind::Nand, 2);
        let m = to_nor_only(&c, NorMappingOptions::default());
        assert_eq!(
            m.gates().len(),
            4,
            "paper's c17 count implies NAND2 = 4 NORs"
        );
    }

    #[test]
    fn xor_costs_five_nors() {
        let c = single_gate(GateKind::Xor, 2);
        let m = to_nor_only(&c, NorMappingOptions::default());
        assert_eq!(m.gates().len(), 5);
        let x = to_nor_only(
            &c,
            NorMappingOptions {
                expand_xor_to_nand: true,
                ..Default::default()
            },
        );
        assert_eq!(x.gates().len(), 16, "4 NAND2 x 4 NORs each");
    }

    #[test]
    fn sharing_reduces_gate_count() {
        // AND(a,b) twice reading the same nets: sharing saves inverters.
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let c = b.add_input("b");
        let x = b.add_gate(GateKind::And, &[a, c], "x");
        let y = b.add_gate(GateKind::And, &[a, c], "y");
        b.mark_output(x);
        b.mark_output(y);
        let circuit = b.build().unwrap();
        let plain = to_nor_only(&circuit, NorMappingOptions::default());
        let shared = to_nor_only(
            &circuit,
            NorMappingOptions {
                share_inverters: true,
                ..Default::default()
            },
        );
        assert!(shared.gates().len() < plain.gates().len());
        exhaustive_equiv(&circuit, &shared);
    }

    #[test]
    fn native_mapping_keeps_supported_cells() {
        // c17 is pure NAND2: native mapping must keep all 6 gates.
        let c17 = crate::c17();
        let native = to_native_cells(&c17);
        assert!(is_native_only(&native));
        assert_eq!(native.gates().len(), 6, "NAND2 is a first-class cell");
        exhaustive_equiv(&c17, &native);
        // Pass-through cells keep their original net names.
        for o in c17.outputs() {
            let name = c17.net_name(*o);
            assert!(native.find_net(name).is_some(), "net {name} renamed");
        }
        // Mapping an already-native circuit keeps the gate count.
        let again = to_native_cells(&native);
        assert_eq!(again.gates().len(), native.gates().len());
    }

    #[test]
    fn native_mapping_decomposes_unsupported_shapes() {
        let cases = [
            (GateKind::Buf, 1, 2),  // inverter pair
            (GateKind::Xor, 2, 4),  // 4 NAND2
            (GateKind::Xnor, 2, 5), // XOR + INV
            (GateKind::And, 5, 4),  // AND2 tree
            (GateKind::Nand, 4, 3), // AND2 tree (2) + final NAND2
            (GateKind::Nor, 6, 5),  // OR2 tree (4) + final NOR2
            (GateKind::Nor, 3, 1),  // NOR3 is native
            (GateKind::Or, 2, 1),   // native
        ];
        for (kind, arity, expect_gates) in cases {
            let c = single_gate(kind, arity);
            let m = to_native_cells(&c);
            assert!(is_native_only(&m), "{kind}/{arity}");
            assert_eq!(m.gates().len(), expect_gates, "{kind}/{arity}");
            exhaustive_equiv(&c, &m);
        }
    }

    #[test]
    fn native_mapping_shrinks_nand_heavy_circuits() {
        // The tentpole's motivation: c1355 (NAND-expanded XORs) must not
        // inflate under the native policy the way NOR mapping inflates it.
        let bench = crate::Benchmark::by_name("c1355").unwrap();
        assert!(
            bench.native.gates().len() * 2 < bench.nor_mapped.gates().len(),
            "native {} vs NOR-mapped {}",
            bench.native.gates().len(),
            bench.nor_mapped.gates().len()
        );
        assert!(is_native_only(&bench.native));
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [MappingPolicy::NorOnly, MappingPolicy::Native] {
            assert_eq!(MappingPolicy::from_name(policy.as_str()), Some(policy));
        }
        assert_eq!(MappingPolicy::from_name("tripwire"), None);
        assert_eq!(MappingPolicy::default(), MappingPolicy::NorOnly);
    }

    proptest! {
        /// The satellite parity property: over random DAGs of the
        /// supported cell set, [`MappingPolicy::Native`] and
        /// [`MappingPolicy::NorOnly`] produce circuits with identical
        /// digital (boolean) behaviour.
        #[test]
        fn policies_agree_on_random_native_dags(
            seed in 0u64..u64::MAX,
            bits in proptest::collection::vec(any::<bool>(), 5),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let kinds = [GateKind::Inv, GateKind::Nor, GateKind::Nand,
                         GateKind::And, GateKind::Or];
            let mut b = CircuitBuilder::new();
            let mut nets: Vec<NetId> =
                (0..5).map(|i| b.add_input(&format!("i{i}"))).collect();
            for g in 0..rng.gen_range(1..12usize) {
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let arity = match kind {
                    GateKind::Inv => 1,
                    GateKind::Nor => rng.gen_range(1..4usize),
                    _ => 2,
                };
                let mut ins = Vec::new();
                while ins.len() < arity {
                    let pick = nets[rng.gen_range(0..nets.len())];
                    if !ins.contains(&pick) {
                        ins.push(pick);
                    }
                }
                nets.push(b.add_gate(kind, &ins, &format!("g{g}")));
            }
            b.mark_output(*nets.last().expect("nonempty"));
            let c = b.build().expect("random native DAG is valid");

            let native = map_with_policy(&c, MappingPolicy::Native,
                                         NorMappingOptions::default());
            let nor = map_with_policy(&c, MappingPolicy::NorOnly,
                                      NorMappingOptions::default());
            prop_assert!(is_native_only(&native));
            prop_assert!(nor.is_nor_only());
            prop_assert_eq!(native.eval(&bits), nor.eval(&bits));
            prop_assert_eq!(native.eval(&bits), c.eval(&bits));
        }
    }

    proptest! {
        #[test]
        fn random_two_level_circuits_stay_equivalent(
            seed_kinds in proptest::collection::vec(0usize..6, 4),
            bits in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let kinds = [GateKind::And, GateKind::Or, GateKind::Nand,
                         GateKind::Nor, GateKind::Xor, GateKind::Xnor];
            let mut b = CircuitBuilder::new();
            let ins: Vec<NetId> = (0..6).map(|i| b.add_input(&format!("i{i}"))).collect();
            let g1 = b.add_gate(kinds[seed_kinds[0]], &[ins[0], ins[1]], "g1");
            let g2 = b.add_gate(kinds[seed_kinds[1]], &[ins[2], ins[3]], "g2");
            let g3 = b.add_gate(kinds[seed_kinds[2]], &[ins[4], ins[5]], "g3");
            let g4 = b.add_gate(kinds[seed_kinds[3]], &[g1, g2], "g4");
            let g5 = b.add_gate(GateKind::Or, &[g4, g3], "g5");
            b.mark_output(g5);
            let c = b.build().unwrap();
            let m = to_nor_only(&c, NorMappingOptions::default());
            prop_assert!(m.is_nor_only());
            prop_assert_eq!(c.eval(&bits), m.eval(&bits));
        }
    }
}
