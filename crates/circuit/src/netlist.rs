//! Gate-level netlists: nets, gates, validation, topological ordering and
//! boolean evaluation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Index of a net (signal) in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub usize);

/// The boolean function of a gate; arity is given by its input list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Inverter (arity 1).
    Inv,
    /// Buffer (arity 1).
    Buf,
    /// AND (arity ≥ 2).
    And,
    /// NAND (arity ≥ 2).
    Nand,
    /// OR (arity ≥ 2).
    Or,
    /// NOR (arity ≥ 1; a 1-input NOR is an inverter, the form produced by
    /// NOR-only mapping).
    Nor,
    /// XOR (arity 2).
    Xor,
    /// XNOR (arity 2).
    Xnor,
}

impl GateKind {
    /// Evaluates the gate on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics on arity violations (validated at circuit construction).
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Inv => {
                assert_eq!(inputs.len(), 1);
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1);
                inputs[0]
            }
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => {
                assert_eq!(inputs.len(), 2);
                inputs[0] ^ inputs[1]
            }
            GateKind::Xnor => {
                assert_eq!(inputs.len(), 2);
                !(inputs[0] ^ inputs[1])
            }
        }
    }

    /// Whether `arity` inputs are legal for this gate kind.
    #[must_use]
    pub fn arity_ok(&self, arity: usize) -> bool {
        match self {
            GateKind::Inv | GateKind::Buf => arity == 1,
            GateKind::Xor | GateKind::Xnor => arity == 2,
            GateKind::Nor => arity >= 1,
            GateKind::And | GateKind::Nand | GateKind::Or => arity >= 2,
        }
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GateKind::Inv => "INV",
            GateKind::Buf => "BUF",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        };
        f.write_str(s)
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Boolean function.
    pub kind: GateKind,
    /// Input nets, in order.
    pub inputs: Vec<NetId>,
    /// Output net (each net is driven by at most one gate).
    pub output: NetId,
}

/// A combinational gate-level circuit.
///
/// Built via [`CircuitBuilder`]; construction validates arities, single
/// drivers and acyclicity, so every constructed circuit has a topological
/// order.
///
/// Serialization carries only the source data (nets, inputs, outputs,
/// gates); the derived schedules (`topo`, `levels`, `fanouts`) are
/// recomputed on deserialization so they can never disagree with the gate
/// list.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    net_names: Vec<String>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
    /// Gate indices in topological order (computed at build time).
    topo: Vec<usize>,
    /// ASAP levelization: `levels[l]` holds the (ascending) indices of the
    /// gates whose inputs are all primary inputs or outputs of gates in
    /// levels `< l` (computed at build time, like `topo`).
    levels: Vec<Vec<usize>>,
    /// Per-net fanout dependency lists: `fanouts[n]` holds the (ascending)
    /// indices of the gates reading net `n` (computed at build time, like
    /// `topo`/`levels`).
    fanouts: Vec<Vec<usize>>,
}

/// The derived schedules of a gate list: the topological order (Kahn), the
/// ASAP levelization, and the per-net fanout dependency lists.
type Schedules = (Vec<usize>, Vec<Vec<usize>>, Vec<Vec<usize>>);

/// Computes the derived schedules of a gate list: the topological order
/// (Kahn), the ASAP levelization and the per-net fanout lists (net index →
/// gate indices reading it). Returns `None` if the gate graph contains a
/// combinational cycle. Shared by [`CircuitBuilder::build`] and
/// deserialization (which must not trust schedules from the wire).
fn derive_schedules(gates: &[Gate], net_count: usize) -> Option<Schedules> {
    let mut driver: Vec<Option<usize>> = vec![None; net_count];
    for (gi, g) in gates.iter().enumerate() {
        // Both callers run `validate_structure` first, so each net has at
        // most one driver.
        driver[g.output.0].get_or_insert(gi);
    }
    // Kahn topological sort over gates.
    let mut indegree: Vec<usize> = gates
        .iter()
        .map(|g| g.inputs.iter().filter(|i| driver[i.0].is_some()).count())
        .collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    // Gate indices ascend in the iteration, so each per-net list comes out
    // sorted without an explicit sort.
    let mut fanouts: Vec<Vec<usize>> = vec![Vec::new(); net_count];
    for (gi, g) in gates.iter().enumerate() {
        for i in &g.inputs {
            if let Some(d) = driver[i.0] {
                consumers[d].push(gi);
            }
            if fanouts[i.0].last() != Some(&gi) {
                fanouts[i.0].push(gi);
            }
        }
    }
    let mut queue: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut topo = Vec::with_capacity(gates.len());
    while let Some(gi) = queue.pop() {
        topo.push(gi);
        for &c in &consumers[gi] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
            }
        }
    }
    if topo.len() != gates.len() {
        return None;
    }
    // ASAP levelization: a gate's level is the maximum level of its
    // input nets, where a net's level is its driver's level + 1 and
    // primary inputs are level 0. Walking in topological order, every
    // input net's level is final by the time its consumer is placed.
    let mut net_level = vec![0usize; net_count];
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for &gi in &topo {
        let g = &gates[gi];
        let lvl = g.inputs.iter().map(|i| net_level[i.0]).max().unwrap_or(0);
        net_level[g.output.0] = lvl + 1;
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].push(gi);
    }
    for level in &mut levels {
        level.sort_unstable();
    }
    Some((topo, levels, fanouts))
}

impl Serialize for Circuit {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("net_names".to_string(), self.net_names.to_value()),
            ("inputs".to_string(), self.inputs.to_value()),
            ("outputs".to_string(), self.outputs.to_value()),
            ("gates".to_string(), self.gates.to_value()),
        ])
    }
}

impl Deserialize for Circuit {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let net_names = Vec::<String>::from_value(v.get_field("net_names")?)?;
        let inputs = Vec::<NetId>::from_value(v.get_field("inputs")?)?;
        let outputs = Vec::<NetId>::from_value(v.get_field("outputs")?)?;
        let gates = Vec::<Gate>::from_value(v.get_field("gates")?)?;
        let n = net_names.len();
        let in_range = |id: &NetId| id.0 < n;
        if !inputs.iter().all(in_range)
            || !outputs.iter().all(in_range)
            || !gates
                .iter()
                .all(|g| in_range(&g.output) && g.inputs.iter().all(in_range))
        {
            return Err(serde::Error::new("circuit references a net out of range"));
        }
        validate_structure(&net_names, &inputs, &outputs, &gates)
            .map_err(|e| serde::Error::new(format!("invalid circuit: {e}")))?;
        let (topo, levels, fanouts) = derive_schedules(&gates, n)
            .ok_or_else(|| serde::Error::new("circuit contains a combinational cycle"))?;
        Ok(Self {
            net_names,
            inputs,
            outputs,
            gates,
            topo,
            levels,
            fanouts,
        })
    }
}

/// Error building a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// A net is driven by more than one gate.
    MultipleDrivers {
        /// The doubly-driven net.
        net: String,
    },
    /// A gate output drives a primary input.
    DrivesInput {
        /// The offending net.
        net: String,
    },
    /// Gate has an invalid number of inputs for its kind.
    BadArity {
        /// Gate index.
        gate: usize,
        /// Gate kind.
        kind: GateKind,
        /// Provided arity.
        arity: usize,
    },
    /// A net is read but never driven and is not a primary input.
    Undriven {
        /// The floating net.
        net: String,
    },
    /// The gate graph contains a combinational cycle.
    Cyclic,
    /// An output was declared that no gate drives and is not an input.
    UndrivenOutput {
        /// The output net.
        net: String,
    },
    /// Duplicate net name.
    DuplicateName(String),
}

impl std::fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MultipleDrivers { net } => write!(f, "net {net:?} has multiple drivers"),
            Self::DrivesInput { net } => write!(f, "gate drives primary input {net:?}"),
            Self::BadArity { gate, kind, arity } => {
                write!(f, "gate {gate} ({kind}) has invalid arity {arity}")
            }
            Self::Undriven { net } => write!(f, "net {net:?} is read but never driven"),
            Self::Cyclic => write!(f, "circuit contains a combinational cycle"),
            Self::UndrivenOutput { net } => write!(f, "declared output {net:?} is undriven"),
            Self::DuplicateName(n) => write!(f, "duplicate net name {n:?}"),
        }
    }
}

impl std::error::Error for BuildCircuitError {}

impl Circuit {
    /// Primary input nets.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates (unordered; see [`Circuit::topological_gates`]).
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.0]
    }

    /// Looks up a net by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.iter().position(|n| n == name).map(NetId)
    }

    /// Gate indices in topological (input→output) order.
    #[must_use]
    pub fn topological_gates(&self) -> &[usize] {
        &self.topo
    }

    /// ASAP levelization of the gate graph, cached at build time: level 0
    /// holds the gates fed only by primary inputs, level `l` the gates
    /// whose deepest input is driven from level `l − 1`. All gates within
    /// one level are independent of each other, so they can be evaluated
    /// in any order — or in parallel, or as one batch — once every
    /// earlier level is done. Gate indices within a level are ascending,
    /// and flattening the levels in order yields a valid topological
    /// order (see [`Circuit::topological_gates`]).
    #[must_use]
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Per-net fanout dependency lists, cached at build time alongside
    /// [`Circuit::levels`]: `fanouts()[n]` holds the ascending,
    /// deduplicated indices of the gates reading net `n`. This is the
    /// dependency structure an event-driven scheduler seeds from — when a
    /// net's trace changes, exactly the gates in its list need
    /// re-evaluation. (Load *counts*, which also weigh primary outputs,
    /// are [`Circuit::fanout_counts`].)
    #[must_use]
    pub fn fanouts(&self) -> &[Vec<usize>] {
        &self.fanouts
    }

    /// Number of gate inputs reading each net (the net's fan-out); primary
    /// outputs additionally count as one load each.
    #[must_use]
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.net_names.len()];
        for g in &self.gates {
            for i in &g.inputs {
                counts[i.0] += 1;
            }
        }
        for o in &self.outputs {
            counts[o.0] += 1;
        }
        counts
    }

    /// Logic level (longest path in gates) of each net; inputs are level 0.
    /// A gate's output net sits one past its level in [`Circuit::levels`].
    #[must_use]
    pub fn net_levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.net_names.len()];
        for &gi in &self.topo {
            let g = &self.gates[gi];
            let max_in = g.inputs.iter().map(|i| level[i.0]).max().unwrap_or(0);
            level[g.output.0] = max_in + 1;
        }
        level
    }

    /// Circuit depth: the maximum output level.
    #[must_use]
    pub fn depth(&self) -> usize {
        let levels = self.net_levels();
        self.outputs.iter().map(|o| levels[o.0]).max().unwrap_or(0)
    }

    /// Evaluates the circuit on a boolean input assignment (same order as
    /// [`Circuit::inputs`]); returns output values (same order as
    /// [`Circuit::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count.
    #[must_use]
    pub fn eval(&self, values: &[bool]) -> Vec<bool> {
        assert_eq!(values.len(), self.inputs.len(), "input count mismatch");
        let mut nets = vec![false; self.net_names.len()];
        for (net, &v) in self.inputs.iter().zip(values) {
            nets[net.0] = v;
        }
        let mut buf = Vec::new();
        for &gi in &self.topo {
            let g = &self.gates[gi];
            buf.clear();
            buf.extend(g.inputs.iter().map(|i| nets[i.0]));
            nets[g.output.0] = g.kind.eval(&buf);
        }
        self.outputs.iter().map(|o| nets[o.0]).collect()
    }

    /// Bit-parallel boolean evaluation: bit `k` of `words[i]` is the value
    /// of input `i` in the `k`-th of 64 simultaneous input vectors; the
    /// returned vector holds one word **per net** (indexed by [`NetId`]),
    /// each bit lane evaluated independently. Lane 0 of the result equals
    /// [`Circuit::eval`] on the lane-0 bits, and so on — this is the
    /// sampling primitive equivalence checkers use to propose internal
    /// net correspondences before proving them (see the `sigcheck` crate).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the input count.
    #[must_use]
    pub fn eval_words(&self, words: &[u64]) -> Vec<u64> {
        assert_eq!(words.len(), self.inputs.len(), "input count mismatch");
        let mut nets = vec![0u64; self.net_names.len()];
        for (net, &w) in self.inputs.iter().zip(words) {
            nets[net.0] = w;
        }
        for &gi in &self.topo {
            let g = &self.gates[gi];
            let mut acc = nets[g.inputs[0].0];
            match g.kind {
                GateKind::Inv => acc = !acc,
                GateKind::Buf => {}
                GateKind::And => {
                    for i in &g.inputs[1..] {
                        acc &= nets[i.0];
                    }
                }
                GateKind::Nand => {
                    for i in &g.inputs[1..] {
                        acc &= nets[i.0];
                    }
                    acc = !acc;
                }
                GateKind::Or => {
                    for i in &g.inputs[1..] {
                        acc |= nets[i.0];
                    }
                }
                GateKind::Nor => {
                    for i in &g.inputs[1..] {
                        acc |= nets[i.0];
                    }
                    acc = !acc;
                }
                GateKind::Xor => acc ^= nets[g.inputs[1].0],
                GateKind::Xnor => acc = !(acc ^ nets[g.inputs[1].0]),
            }
            nets[g.output.0] = acc;
        }
        nets
    }

    /// Per-kind gate counts (for reporting, cf. Table I's `#NOR-gates`).
    #[must_use]
    pub fn gate_histogram(&self) -> HashMap<GateKind, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.kind).or_insert(0) += 1;
        }
        h
    }

    /// `true` if every gate is a NOR (of any arity) — the form accepted by
    /// the paper's prototype simulator.
    #[must_use]
    pub fn is_nor_only(&self) -> bool {
        self.gates.iter().all(|g| g.kind == GateKind::Nor)
    }
}

/// Incrementally builds and validates a [`Circuit`].
///
/// # Example
///
/// ```
/// use sigcircuit::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new();
/// let a = b.add_input("a");
/// let c = b.add_gate(GateKind::Inv, &[a], "a_n");
/// b.mark_output(c);
/// let circuit = b.build()?;
/// assert_eq!(circuit.eval(&[false]), vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    net_names: Vec<String>,
    name_index: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, name: &str) -> Result<NetId, BuildCircuitError> {
        if self.name_index.contains_key(name) {
            return Err(BuildCircuitError::DuplicateName(name.to_string()));
        }
        let id = NetId(self.net_names.len());
        self.net_names.push(name.to_string());
        self.name_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a primary input net.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names (use [`CircuitBuilder::try_add_input`] for
    /// a fallible version).
    pub fn add_input(&mut self, name: &str) -> NetId {
        self.try_add_input(name).expect("duplicate input name")
    }

    /// Adds a primary input net; errors on duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DuplicateName`] if the name exists.
    pub fn try_add_input(&mut self, name: &str) -> Result<NetId, BuildCircuitError> {
        let id = self.intern(name)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a gate driving a freshly created net named `output_name`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or bad arity (use
    /// [`CircuitBuilder::try_add_gate`] for a fallible version).
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId], output_name: &str) -> NetId {
        self.try_add_gate(kind, inputs, output_name)
            .expect("invalid gate")
    }

    /// Adds a gate driving a new net; errors on duplicates or bad arity.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] on duplicate name or arity violation.
    pub fn try_add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output_name: &str,
    ) -> Result<NetId, BuildCircuitError> {
        if !kind.arity_ok(inputs.len()) {
            return Err(BuildCircuitError::BadArity {
                gate: self.gates.len(),
                kind,
                arity: inputs.len(),
            });
        }
        let out = self.intern(output_name)?;
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Declares a net as primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Validates and finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] when structural invariants are violated
    /// (multiple drivers, cycles, floating nets, undriven outputs).
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        validate_structure(&self.net_names, &self.inputs, &self.outputs, &self.gates)?;
        let (topo, levels, fanouts) =
            derive_schedules(&self.gates, self.net_names.len()).ok_or(BuildCircuitError::Cyclic)?;
        Ok(Circuit {
            net_names: self.net_names,
            inputs: self.inputs,
            outputs: self.outputs,
            gates: self.gates,
            topo,
            levels,
            fanouts,
        })
    }
}

/// The structural invariants every [`Circuit`] upholds (arities, single
/// drivers, all read nets driven, declared outputs driven) — enforced by
/// [`CircuitBuilder::build`] and by deserialization, which must not admit
/// circuits the builder would reject (acyclicity is checked separately by
/// `derive_schedules`). Expects net ids already bounds-checked.
fn validate_structure(
    net_names: &[String],
    inputs: &[NetId],
    outputs: &[NetId],
    gates: &[Gate],
) -> Result<(), BuildCircuitError> {
    let n = net_names.len();
    let mut driver: Vec<Option<usize>> = vec![None; n];
    let is_input: Vec<bool> = {
        let mut v = vec![false; n];
        for i in inputs {
            v[i.0] = true;
        }
        v
    };
    for (gi, g) in gates.iter().enumerate() {
        if !g.kind.arity_ok(g.inputs.len()) {
            return Err(BuildCircuitError::BadArity {
                gate: gi,
                kind: g.kind,
                arity: g.inputs.len(),
            });
        }
        if is_input[g.output.0] {
            return Err(BuildCircuitError::DrivesInput {
                net: net_names[g.output.0].clone(),
            });
        }
        if driver[g.output.0].is_some() {
            return Err(BuildCircuitError::MultipleDrivers {
                net: net_names[g.output.0].clone(),
            });
        }
        driver[g.output.0] = Some(gi);
    }
    // All read nets must be driven or inputs.
    for g in gates {
        for i in &g.inputs {
            if !is_input[i.0] && driver[i.0].is_none() {
                return Err(BuildCircuitError::Undriven {
                    net: net_names[i.0].clone(),
                });
            }
        }
    }
    for o in outputs {
        if !is_input[o.0] && driver[o.0].is_none() {
            return Err(BuildCircuitError::UndrivenOutput {
                net: net_names[o.0].clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn half_adder() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let c = b.add_input("b");
        let sum = b.add_gate(GateKind::Xor, &[a, c], "sum");
        let carry = b.add_gate(GateKind::And, &[a, c], "carry");
        b.mark_output(sum);
        b.mark_output(carry);
        b.build().unwrap()
    }

    #[test]
    fn half_adder_truth_table() {
        let c = half_adder();
        assert_eq!(c.eval(&[false, false]), vec![false, false]);
        assert_eq!(c.eval(&[true, false]), vec![true, false]);
        assert_eq!(c.eval(&[false, true]), vec![true, false]);
        assert_eq!(c.eval(&[true, true]), vec![false, true]);
    }

    #[test]
    fn all_gate_kinds_eval() {
        assert!(GateKind::Inv.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(!GateKind::Nor.eval(&[false, true]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
    }

    #[test]
    fn single_input_nor_is_inverter() {
        assert!(GateKind::Nor.arity_ok(1));
        assert!(GateKind::Nor.eval(&[false]));
        assert!(!GateKind::Nor.eval(&[true]));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let x = b.add_gate(GateKind::Inv, &[a], "x");
        // Manually force a second driver for x.
        b.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![a],
            output: x,
        });
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        // x = INV(y), y = INV(x): construct the cycle manually.
        let x = NetId(b.net_names.len());
        b.net_names.push("x".into());
        let y = NetId(b.net_names.len());
        b.net_names.push("y".into());
        b.gates.push(Gate {
            kind: GateKind::And,
            inputs: vec![a, y],
            output: x,
        });
        b.gates.push(Gate {
            kind: GateKind::Inv,
            inputs: vec![x],
            output: y,
        });
        assert_eq!(b.build().unwrap_err(), BuildCircuitError::Cyclic);
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        assert!(matches!(
            b.try_add_gate(GateKind::Xor, &[a], "x"),
            Err(BuildCircuitError::BadArity { .. })
        ));
    }

    #[test]
    fn rejects_undriven_output() {
        let mut b = CircuitBuilder::new();
        let _ = b.add_input("a");
        let phantom = NetId(b.net_names.len());
        b.net_names.push("ghost".into());
        b.outputs.push(phantom);
        assert!(matches!(
            b.build(),
            Err(BuildCircuitError::UndrivenOutput { .. })
        ));
    }

    #[test]
    fn fanout_and_levels() {
        let c = half_adder();
        let fo = c.fanout_counts();
        let a = c.find_net("a").unwrap();
        assert_eq!(fo[a.0], 2); // read by XOR and AND
        assert_eq!(c.depth(), 1);
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let n1 = b.add_gate(GateKind::Inv, &[x], "n1");
        let n2 = b.add_gate(GateKind::Inv, &[n1], "n2");
        b.mark_output(n2);
        let chain = b.build().unwrap();
        assert_eq!(chain.depth(), 2);
    }

    #[test]
    fn levels_partition_gates_by_asap_depth() {
        let c = half_adder();
        // Both gates read only primary inputs: one level with both gates.
        assert_eq!(c.levels(), &[vec![0, 1]]);
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let n1 = b.add_gate(GateKind::Inv, &[x], "n1");
        let n2 = b.add_gate(GateKind::And, &[n1, y], "n2");
        let n3 = b.add_gate(GateKind::Or, &[n1, y], "n3");
        let n4 = b.add_gate(GateKind::And, &[n2, n3], "n4");
        b.mark_output(n4);
        let c = b.build().unwrap();
        // INV at level 0; AND/OR both wait on it; the final AND on both.
        assert_eq!(c.levels(), &[vec![0], vec![1, 2], vec![3]]);
        // Every gate appears exactly once across the levels.
        let mut flat: Vec<usize> = c.levels().iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, vec![0, 1, 2, 3]);
        // A gate's level is its output net's level minus one.
        let net_levels = c.net_levels();
        for (lvl, gates) in c.levels().iter().enumerate() {
            for &gi in gates {
                assert_eq!(net_levels[c.gates()[gi].output.0], lvl + 1);
            }
        }
    }

    #[test]
    fn levels_flatten_to_topological_order() {
        let c = half_adder();
        let mut seen = std::collections::HashSet::new();
        for i in c.inputs() {
            seen.insert(*i);
        }
        for &gi in c.levels().iter().flatten() {
            let g = &c.gates()[gi];
            for i in &g.inputs {
                assert!(seen.contains(i), "dependency violated");
            }
            seen.insert(g.output);
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = half_adder();
        // Each gate's driven inputs must appear earlier in topo order.
        let mut seen = std::collections::HashSet::new();
        for i in c.inputs() {
            seen.insert(*i);
        }
        for &gi in c.topological_gates() {
            let g = &c.gates()[gi];
            for i in &g.inputs {
                assert!(seen.contains(i), "dependency violated");
            }
            seen.insert(g.output);
        }
    }

    #[test]
    fn serde_round_trip_recomputes_schedules() {
        let c = half_adder();
        let json = serde_json::to_string(&c).unwrap();
        // Only source data travels; derived schedules are rebuilt.
        assert!(!json.contains("topo"), "derived fields must not serialize");
        let back: Circuit = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert_eq!(c.topological_gates(), back.topological_gates());
        assert_eq!(c.levels(), back.levels());
        assert_eq!(c.fanouts(), back.fanouts());
    }

    #[test]
    fn fanout_lists_track_consumer_gates() {
        let c = half_adder();
        let a = c.find_net("a").unwrap();
        let b = c.find_net("b").unwrap();
        let sum = c.find_net("sum").unwrap();
        // Both inputs feed the XOR (gate 0) and the AND (gate 1); the
        // outputs feed nothing.
        assert_eq!(c.fanouts()[a.0], vec![0, 1]);
        assert_eq!(c.fanouts()[b.0], vec![0, 1]);
        assert!(c.fanouts()[sum.0].is_empty());
        // A gate listing one net twice appears once in its fanout list.
        let mut bld = CircuitBuilder::new();
        let x = bld.add_input("x");
        let y = bld.add_gate(GateKind::Nor, &[x, x], "y");
        bld.mark_output(y);
        let c = bld.build().unwrap();
        assert_eq!(c.fanouts()[x.0], vec![0]);
    }

    #[test]
    fn deserialize_recomputes_fanout_lists_from_wire_circuits() {
        // A wire circuit never touched by CircuitBuilder: the fanout lists
        // must be derived from the gate list exactly like topo/levels, and
        // must never travel on the wire.
        let wire = r#"{
            "net_names": ["a", "b", "n1", "y"],
            "inputs": [[0], [1]],
            "outputs": [[3]],
            "gates": [
                {"kind": "Nor", "inputs": [[0], [1]], "output": [2]},
                {"kind": "Nor", "inputs": [[2], [1]], "output": [3]}
            ]
        }"#;
        let c: Circuit = serde_json::from_str(wire).unwrap();
        assert_eq!(c.fanouts()[0], vec![0]); // a → first NOR
        assert_eq!(c.fanouts()[1], vec![0, 1]); // b → both NORs
        assert_eq!(c.fanouts()[2], vec![1]); // n1 → second NOR
        assert!(c.fanouts()[3].is_empty()); // y → primary output only
        let json = serde_json::to_string(&c).unwrap();
        assert!(
            !json.contains("fanouts"),
            "derived fanout lists must not serialize"
        );
        let back: Circuit = serde_json::from_str(&json).unwrap();
        assert_eq!(c.fanouts(), back.fanouts());
    }

    #[test]
    fn deserialize_rejects_cycles_and_bad_ids() {
        // x = AND(a, y), y = INV(x): a cycle no builder would produce.
        let cyclic = r#"{
            "net_names": ["a", "x", "y"],
            "inputs": [[0]],
            "outputs": [[1]],
            "gates": [
                {"kind": "And", "inputs": [[0], [2]], "output": [1]},
                {"kind": "Inv", "inputs": [[1]], "output": [2]}
            ]
        }"#;
        let err = serde_json::from_str::<Circuit>(cyclic).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        // A gate referencing a net that does not exist.
        let oob = r#"{
            "net_names": ["a"],
            "inputs": [[0]],
            "outputs": [],
            "gates": [{"kind": "Inv", "inputs": [[7]], "output": [0]}]
        }"#;
        let err = serde_json::from_str::<Circuit>(oob).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn deserialize_enforces_builder_invariants() {
        // A gate reading a net that is neither an input nor gate-driven.
        let read_undriven = r#"{
            "net_names": ["a", "y", "w"],
            "inputs": [[0]],
            "outputs": [[1]],
            "gates": [{"kind": "Nor", "inputs": [[2]], "output": [1]}]
        }"#;
        let err = serde_json::from_str::<Circuit>(read_undriven).unwrap_err();
        assert!(err.to_string().contains("never driven"), "{err}");
        // Two gates driving the same net.
        let dup = r#"{
            "net_names": ["a", "y"],
            "inputs": [[0]],
            "outputs": [[1]],
            "gates": [
                {"kind": "Inv", "inputs": [[0]], "output": [1]},
                {"kind": "Buf", "inputs": [[0]], "output": [1]}
            ]
        }"#;
        let err = serde_json::from_str::<Circuit>(dup).unwrap_err();
        assert!(err.to_string().contains("multiple drivers"), "{err}");
        // A zero-input NOR (no builder produces one).
        let zero_arity = r#"{
            "net_names": ["a", "y"],
            "inputs": [[0]],
            "outputs": [[1]],
            "gates": [{"kind": "Nor", "inputs": [], "output": [1]}]
        }"#;
        let err = serde_json::from_str::<Circuit>(zero_arity).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn eval_words_lanes_match_scalar_eval() {
        let c = half_adder();
        // All four input combinations in the low 4 lanes of one word pair.
        let words = [0b0101u64, 0b0011u64]; // a = 1,0,1,0; b = 1,1,0,0
        let nets = c.eval_words(&words);
        for lane in 0..4 {
            let bits = vec![words[0] >> lane & 1 == 1, words[1] >> lane & 1 == 1];
            let expect = c.eval(&bits);
            for (o, e) in c.outputs().iter().zip(&expect) {
                assert_eq!(nets[o.0] >> lane & 1 == 1, *e, "lane {lane}");
            }
        }
        // Every gate kind, including the 1-input ones, in one circuit.
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let mut outs = Vec::new();
        for (kind, ins) in [
            (GateKind::Inv, vec![x]),
            (GateKind::Buf, vec![y]),
            (GateKind::And, vec![x, y]),
            (GateKind::Nand, vec![x, y]),
            (GateKind::Or, vec![x, y]),
            (GateKind::Nor, vec![x, y]),
            (GateKind::Xor, vec![x, y]),
            (GateKind::Xnor, vec![x, y]),
        ] {
            let o = b.add_gate(kind, &ins, &format!("{kind}_out"));
            b.mark_output(o);
            outs.push(o);
        }
        let c = b.build().unwrap();
        let words = [0b0101u64, 0b0011u64];
        let nets = c.eval_words(&words);
        for lane in 0..4 {
            let bits = vec![words[0] >> lane & 1 == 1, words[1] >> lane & 1 == 1];
            let expect = c.eval(&bits);
            for (o, e) in c.outputs().iter().zip(&expect) {
                assert_eq!(nets[o.0] >> lane & 1 == 1, *e, "lane {lane}");
            }
        }
    }

    proptest! {
        #[test]
        fn random_nor_trees_evaluate_consistently(bits in proptest::collection::vec(any::<bool>(), 4)) {
            // NOR(NOR(a,b), NOR(c,d)) == (a|b) & (c|d)
            let mut b = CircuitBuilder::new();
            let ins: Vec<NetId> = (0..4).map(|i| b.add_input(&format!("i{i}"))).collect();
            let n1 = b.add_gate(GateKind::Nor, &[ins[0], ins[1]], "n1");
            let n2 = b.add_gate(GateKind::Nor, &[ins[2], ins[3]], "n2");
            let out = b.add_gate(GateKind::Nor, &[n1, n2], "out");
            b.mark_output(out);
            let c = b.build().unwrap();
            let got = c.eval(&bits)[0];
            let expect = (bits[0] | bits[1]) & (bits[2] | bits[3]);
            prop_assert_eq!(got, expect);
        }
    }
}
