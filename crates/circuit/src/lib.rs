//! Gate-level netlists, ISCAS-85 benchmarks and NOR-only mapping.
//!
//! This crate provides the circuit substrate of the reproduction of
//! *Signal Prediction for Digital Circuits by Sigmoidal Approximations
//! using Neural Networks* (DATE 2025):
//!
//! * [`Circuit`]/[`CircuitBuilder`] — validated combinational netlists with
//!   topological ordering, levelization, fan-out analysis and boolean
//!   evaluation,
//! * [`parse_bench`]/[`to_bench`] — the ISCAS `.bench` netlist format,
//! * [`load_circuit`] — format auto-detection (`.bench`/JSON by extension
//!   plus content sniffing) and [`content_hash`]/[`Circuit::fingerprint`]
//!   for the `sigserve` circuit cache,
//! * [`to_nor_only`]/[`to_native_cells`]/[`MappingPolicy`] — technology
//!   mapping onto the simulated cell sets: 1-/2-input NOR gates (the
//!   paper's prototype form) or the native multi-cell library (INV,
//!   NOR1–3, NAND2, AND2, OR2; see `docs/cell-libraries.md`),
//! * [`c17`], [`c499`], [`c1355`] — the Table I benchmarks (c17 exact;
//!   c499/c1355 structurally faithful surrogates, see `docs/architecture.md`).
//!
//! # Example
//!
//! ```
//! use sigcircuit::{Benchmark, GateKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = Benchmark::by_name("c17").map_err(|n| format!("unknown {n}"))?;
//! assert_eq!(bench.nor_gate_count(), 24); // Table I's #NOR-gates for c17
//! assert!(bench.nor_mapped.is_nor_only());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_format;
mod fanout;
mod iscas;
mod loader;
mod mapping;
mod netlist;

pub use bench_format::{parse_bench, to_bench, ParseBenchError};
pub use fanout::limit_fanout;
pub use iscas::{c1355, c17, c499, Benchmark};
pub use loader::{
    content_hash, load_circuit, parse_circuit, sniff_format, CircuitFormat, ContentHasher,
    LoadCircuitError,
};
pub use mapping::{
    is_native_cell, is_native_only, map_with_policy, to_native_cells, to_nor_only, MappingPolicy,
    NorMappingOptions,
};
pub use netlist::{BuildCircuitError, Circuit, CircuitBuilder, Gate, GateKind, NetId};
