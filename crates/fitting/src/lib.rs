//! Levenberg–Marquardt least-squares fitting of sigmoidal approximations.
//!
//! This crate implements Sec. II of *Signal Prediction for Digital Circuits
//! by Sigmoidal Approximations using Neural Networks* (DATE 2025): analog
//! waveforms are approximated by sums of logistic sigmoids (Eq. 2), whose
//! parameters are obtained with the Levenberg–Marquardt algorithm, after
//! clipping the waveform to `[0, VDD]` and weighting samples near the
//! inflection points.
//!
//! The [`lm`] module is a general nonlinear least-squares solver (usable on
//! its own); [`fit_waveform`] is the paper's waveform-fitting pipeline.
//!
//! # Example
//!
//! ```
//! use sigwave::{Level, Sigmoid, SigmoidTrace, VDD_DEFAULT};
//! use sigfit::{fit_waveform, FitOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize an "analog" waveform from a known trace, then recover it.
//! let truth = SigmoidTrace::from_transitions(
//!     Level::Low,
//!     vec![Sigmoid::rising(10.0, 1.5)],
//!     VDD_DEFAULT,
//! )?;
//! let wave = truth.to_waveform(0.0, 4e-10, 400);
//! let fit = fit_waveform(&wave, &FitOptions::default())?;
//! assert_eq!(fit.trace.len(), 1);
//! assert!((fit.trace.transitions()[0].b - 1.5).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod lm;
mod sigmoid_fit;

pub use lm::{fit, FitError, LeastSquaresProblem, LmConfig, LmReport, StopReason};
pub use sigmoid_fit::{fit_waveform, FitOptions, FitOutcome, WaveformFitError};
