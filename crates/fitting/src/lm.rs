//! A general Levenberg–Marquardt nonlinear least-squares solver, as used by
//! the paper for fitting sigmoid parameters to SPICE waveforms (Sec. II-A,
//! citing Gavin's LM formulation).

use crate::linalg::{norm2, Matrix};

/// A residual model for least squares: minimizes `Σᵢ wᵢ rᵢ(p)²`.
pub trait LeastSquaresProblem {
    /// Number of residuals (data points).
    fn residual_count(&self) -> usize;
    /// Number of parameters.
    fn parameter_count(&self) -> usize;
    /// Writes the residual vector `r(p)` into `out` (length
    /// `residual_count`).
    fn residuals(&self, params: &[f64], out: &mut [f64]);
    /// Writes the Jacobian `J[i][j] = ∂rᵢ/∂pⱼ` into `out`.
    ///
    /// The default implementation uses central finite differences; override
    /// with an analytic Jacobian for speed and robustness.
    fn jacobian(&self, params: &[f64], out: &mut Matrix) {
        let m = self.residual_count();
        let n = self.parameter_count();
        let mut p = params.to_vec();
        let mut r_plus = vec![0.0; m];
        let mut r_minus = vec![0.0; m];
        for j in 0..n {
            let h = 1e-6 * params[j].abs().max(1e-6);
            let orig = p[j];
            p[j] = orig + h;
            self.residuals(&p, &mut r_plus);
            p[j] = orig - h;
            self.residuals(&p, &mut r_minus);
            p[j] = orig;
            for i in 0..m {
                out[(i, j)] = (r_plus[i] - r_minus[i]) / (2.0 * h);
            }
        }
    }
    /// Optional per-residual weights `wᵢ` (the paper's weighting vector σ
    /// used to tighten the fit near inflection points). `None` means all 1.
    fn weights(&self) -> Option<&[f64]> {
        None
    }
}

/// Configuration of the LM iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Maximum number of accepted + rejected iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative λ update on rejected/accepted steps.
    pub lambda_factor: f64,
    /// Convergence: stop when the relative cost improvement drops below this.
    pub cost_tolerance: f64,
    /// Convergence: stop when the step norm drops below this.
    pub step_tolerance: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            cost_tolerance: 1e-12,
            step_tolerance: 1e-12,
        }
    }
}

/// Why the LM iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Relative cost improvement below tolerance.
    CostConverged,
    /// Step norm below tolerance.
    StepConverged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// Damping grew without producing an acceptable step.
    StalledLambda,
}

/// Result of an LM fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LmReport {
    /// The fitted parameters.
    pub params: Vec<f64>,
    /// Final weighted cost `Σ wᵢ rᵢ²`.
    pub cost: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Why the solver stopped.
    pub stop: StopReason,
}

/// Error from [`fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The problem has no residuals or no parameters.
    EmptyProblem,
    /// The initial guess has the wrong length.
    BadInitialGuess {
        /// Expected parameter count.
        expected: usize,
        /// Provided parameter count.
        actual: usize,
    },
    /// Residuals became non-finite at the initial guess.
    NonFiniteResiduals,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyProblem => write!(f, "problem has no residuals or parameters"),
            Self::BadInitialGuess { expected, actual } => {
                write!(f, "initial guess has {actual} entries, expected {expected}")
            }
            Self::NonFiniteResiduals => write!(f, "residuals are non-finite at the start point"),
        }
    }
}

impl std::error::Error for FitError {}

fn weighted_cost(r: &[f64], w: Option<&[f64]>) -> f64 {
    match w {
        Some(w) => r.iter().zip(w).map(|(r, w)| w * r * r).sum(),
        None => r.iter().map(|r| r * r).sum(),
    }
}

/// Runs Levenberg–Marquardt on `problem` starting from `initial`.
///
/// # Errors
///
/// Returns [`FitError`] for structurally invalid problems; a poor fit is not
/// an error (inspect [`LmReport::cost`]).
pub fn fit(
    problem: &impl LeastSquaresProblem,
    initial: &[f64],
    config: &LmConfig,
) -> Result<LmReport, FitError> {
    let m = problem.residual_count();
    let n = problem.parameter_count();
    if m == 0 || n == 0 {
        return Err(FitError::EmptyProblem);
    }
    if initial.len() != n {
        return Err(FitError::BadInitialGuess {
            expected: n,
            actual: initial.len(),
        });
    }

    let mut params = initial.to_vec();
    let mut r = vec![0.0; m];
    problem.residuals(&params, &mut r);
    if r.iter().any(|x| !x.is_finite()) {
        return Err(FitError::NonFiniteResiduals);
    }
    let weights = problem.weights();
    if let Some(w) = weights {
        assert_eq!(w.len(), m, "weight vector length must match residuals");
    }
    let mut cost = weighted_cost(&r, weights);
    let mut lambda = config.initial_lambda;
    let mut jac = Matrix::zeros(m, n);
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0;

    'outer: while iterations < config.max_iterations {
        iterations += 1;
        problem.jacobian(&params, &mut jac);
        // Apply weights: scale rows of J and r by sqrt(w).
        let (jw, rw): (Matrix, Vec<f64>) = if let Some(w) = weights {
            let jw = Matrix::from_fn(m, n, |i, j| jac[(i, j)] * w[i].sqrt());
            let rw = r.iter().zip(w).map(|(r, w)| r * w.sqrt()).collect();
            (jw, rw)
        } else {
            (jac.clone(), r.clone())
        };
        let jtj = jw.gram();
        let jtr = jw.transpose_mul_vec(&rw);

        // Inner loop: grow λ until a cost-reducing step is found.
        let mut inner = 0;
        loop {
            inner += 1;
            // (JᵀJ + λ diag(JᵀJ)) δ = -Jᵀr   (Marquardt scaling)
            let mut a = jtj.clone();
            for i in 0..n {
                let d = jtj[(i, i)].max(1e-12);
                a[(i, i)] += lambda * d;
            }
            let neg_jtr: Vec<f64> = jtr.iter().map(|x| -x).collect();
            let step = match a.cholesky_solve(&neg_jtr) {
                Ok(s) => s,
                Err(_) => {
                    lambda *= config.lambda_factor;
                    if lambda > 1e12 {
                        stop = StopReason::StalledLambda;
                        break 'outer;
                    }
                    continue;
                }
            };
            let trial: Vec<f64> = params.iter().zip(&step).map(|(p, s)| p + s).collect();
            let mut r_trial = vec![0.0; m];
            problem.residuals(&trial, &mut r_trial);
            let trial_cost = if r_trial.iter().all(|x| x.is_finite()) {
                weighted_cost(&r_trial, weights)
            } else {
                f64::INFINITY
            };
            if trial_cost < cost {
                let improvement = (cost - trial_cost) / cost.max(1e-300);
                params = trial;
                r = r_trial;
                cost = trial_cost;
                lambda = (lambda / config.lambda_factor).max(1e-12);
                if improvement < config.cost_tolerance {
                    stop = StopReason::CostConverged;
                    break 'outer;
                }
                if norm2(&step) < config.step_tolerance {
                    stop = StopReason::StepConverged;
                    break 'outer;
                }
                break;
            }
            lambda *= config.lambda_factor;
            if lambda > 1e12 || inner > 40 {
                stop = StopReason::StalledLambda;
                break 'outer;
            }
        }
    }

    Ok(LmReport {
        params,
        cost,
        iterations,
        stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r_i = y_i - (p0 * x_i + p1): linear regression.
    struct Linear {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl LeastSquaresProblem for Linear {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = y - (p[0] * x + p[1]);
            }
        }
    }

    /// Rosenbrock-style valley expressed as residuals.
    struct Rosenbrock;

    impl LeastSquaresProblem for Rosenbrock {
        fn residual_count(&self) -> usize {
            2
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            out[0] = 10.0 * (p[1] - p[0] * p[0]);
            out[1] = 1.0 - p[0];
        }
    }

    /// Exponential decay y = p0 * exp(-p1 * x), a classic LM test.
    struct ExpDecay {
        xs: Vec<f64>,
        ys: Vec<f64>,
        weights: Option<Vec<f64>>,
    }

    impl LeastSquaresProblem for ExpDecay {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = y - p[0] * (-p[1] * x).exp();
            }
        }
        fn weights(&self) -> Option<&[f64]> {
            self.weights.as_deref()
        }
    }

    #[test]
    fn linear_regression_exact() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.25).collect();
        let rep = fit(&Linear { xs, ys }, &[0.0, 0.0], &LmConfig::default()).unwrap();
        assert!((rep.params[0] - 2.5).abs() < 1e-8, "{:?}", rep);
        assert!((rep.params[1] + 1.25).abs() < 1e-8);
        assert!(rep.cost < 1e-16);
    }

    #[test]
    fn rosenbrock_minimum() {
        let rep = fit(
            &Rosenbrock,
            &[-1.2, 1.0],
            &LmConfig {
                max_iterations: 500,
                ..LmConfig::default()
            },
        )
        .unwrap();
        assert!((rep.params[0] - 1.0).abs() < 1e-6, "{:?}", rep);
        assert!((rep.params[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exp_decay_recovery() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (-0.7 * x).exp()).collect();
        let rep = fit(
            &ExpDecay {
                xs,
                ys,
                weights: None,
            },
            &[1.0, 1.0],
            &LmConfig::default(),
        )
        .unwrap();
        assert!((rep.params[0] - 3.0).abs() < 1e-6);
        assert!((rep.params[1] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn weights_emphasize_points() {
        // Data from two inconsistent lines; heavy weights on the second half
        // pull the fit toward it.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 5.0 { 1.0 } else { 2.0 })
            .collect();
        let w: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 5.0 { 1e-6 } else { 1.0 })
            .collect();
        let rep = fit(
            &ExpDecay {
                xs,
                ys,
                weights: Some(w),
            },
            &[1.5, 0.01],
            &LmConfig::default(),
        )
        .unwrap();
        // Model ~ p0 * exp(-p1 x) ≈ 2 with p1 ≈ 0 fits the heavy points.
        let v = rep.params[0] * (-rep.params[1] * 7.0).exp();
        assert!(
            (v - 2.0).abs() < 0.05,
            "weighted fit should track heavy half, got {v}"
        );
    }

    #[test]
    fn rejects_bad_guess_length() {
        let p = Linear {
            xs: vec![0.0, 1.0],
            ys: vec![0.0, 1.0],
        };
        assert!(matches!(
            fit(&p, &[0.0], &LmConfig::default()),
            Err(FitError::BadInitialGuess {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn rejects_empty_problem() {
        let p = Linear {
            xs: vec![],
            ys: vec![],
        };
        assert!(matches!(
            fit(&p, &[0.0, 0.0], &LmConfig::default()),
            Err(FitError::EmptyProblem)
        ));
    }

    #[test]
    fn already_converged_stops_fast() {
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let rep = fit(&Linear { xs, ys }, &[2.0, 0.0], &LmConfig::default()).unwrap();
        assert!(rep.iterations <= 3, "{:?}", rep);
    }
}
