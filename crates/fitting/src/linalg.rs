//! Minimal dense linear algebra needed by the Levenberg–Marquardt solver:
//! row-major matrices, Cholesky factorization, and triangular solves.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error from [`Matrix::cholesky_solve`]: the system matrix is not positive
/// definite (within numerical tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefiniteError;

impl std::fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefiniteError {}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a closure over `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `Aᵀ A`, the Gram matrix (used for the LM normal equations).
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for k in 0..self.rows {
                    s += self[(k, i)] * self[(k, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// `Aᵀ v` for a vector `v` of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    #[must_use]
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for k in 0..self.rows {
            let vk = v[k];
            for j in 0..self.cols {
                out[j] += self[(k, j)] * vk;
            }
        }
        out
    }

    /// `A v` for a vector `v` of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut s = 0.0;
            for j in 0..self.cols {
                s += self[(i, j)] * v[j];
            }
            out[i] = s;
        }
        out
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if a non-positive pivot appears.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefiniteError> {
        assert_eq!(self.rows, self.cols, "matrix must be square");
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let n = self.rows;
        // Factor A = L Lᵀ.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(NotPositiveDefiniteError);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        // Forward solve L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Back solve Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Euclidean norm of a vector.
#[must_use]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(3);
        let x = a.cholesky_solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_spd_system() {
        // A = [[4,2],[2,3]], b=[2,1] -> x = [0.5, 0]
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let x = a.cholesky_solve(&[2.0, 1.0]).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn non_spd_rejected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -1.0;
        assert_eq!(a.cholesky_solve(&[1.0, 1.0]), Err(NotPositiveDefiniteError));
    }

    #[test]
    fn gram_of_tall_matrix() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let g = a.gram();
        // columns: [0,1,2] and [1,2,3]
        assert!((g[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((g[(0, 1)] - 8.0).abs() < 1e-12);
        assert!((g[(1, 1)] - 14.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_products() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(a.transpose_mul_vec(&[1.0, 1.0]), vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn norm_basics() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn cholesky_solves_random_spd(
            vals in proptest::collection::vec(-2.0..2.0f64, 12),
            xs in proptest::collection::vec(-3.0..3.0f64, 3),
        ) {
            // Build A = BᵀB + I (guaranteed SPD), random x, check round trip.
            let b = Matrix::from_fn(4, 3, |i, j| vals[i * 3 + j]);
            let mut a = b.gram();
            for i in 0..3 { a[(i, i)] += 1.0; }
            let rhs = a.mul_vec(&xs);
            let solved = a.cholesky_solve(&rhs).unwrap();
            for (s, x) in solved.iter().zip(&xs) {
                prop_assert!((s - x).abs() < 1e-8, "{} vs {}", s, x);
            }
        }
    }
}
