//! Fitting sigmoidal approximations to analog waveforms (Sec. II of the
//! paper): clipping, crossing-based initial guesses, inflection-point
//! weighting, and Levenberg–Marquardt refinement with an analytic Jacobian.

use sigwave::{
    to_scaled_time, CrossingDirection, Level, Sigmoid, SigmoidTrace, Waveform, TIME_SCALE,
};

use crate::linalg::Matrix;
use crate::lm::{fit, FitError, LeastSquaresProblem, LmConfig};

/// Options controlling [`fit_waveform`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitOptions {
    /// Supply voltage; the waveform is clipped to `[0, vdd]` before fitting
    /// because sigmoids cannot express over/undershoot (Sec. II-B).
    pub vdd: f64,
    /// Extra weight applied near the `vdd/2` inflection points (the paper's
    /// weighting vector σ ensures "a tight fit at the inflection points").
    pub inflection_weight: f64,
    /// Width of the inflection emphasis band as a fraction of `vdd`.
    pub inflection_band: f64,
    /// LM iteration settings.
    pub lm: LmConfig,
    /// Number of uniform samples the waveform is evaluated on for fitting.
    pub samples: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            vdd: sigwave::VDD_DEFAULT,
            inflection_weight: 8.0,
            inflection_band: 0.2,
            lm: LmConfig {
                max_iterations: 80,
                ..LmConfig::default()
            },
            samples: 600,
        }
    }
}

/// Error from [`fit_waveform`].
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformFitError {
    /// The optimizer failed structurally (see inner error).
    Solver(FitError),
    /// The fitted transitions could not be assembled into a valid trace;
    /// usually a symptom of a degenerate waveform.
    InvalidTrace(String),
}

impl std::fmt::Display for WaveformFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Solver(e) => write!(f, "least-squares solver failed: {e}"),
            Self::InvalidTrace(m) => write!(f, "fitted parameters form no valid trace: {m}"),
        }
    }
}

impl std::error::Error for WaveformFitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Solver(e) => Some(e),
            Self::InvalidTrace(_) => None,
        }
    }
}

impl From<FitError> for WaveformFitError {
    fn from(e: FitError) -> Self {
        Self::Solver(e)
    }
}

/// Outcome of a waveform fit: the sigmoidal approximation plus quality data.
#[derive(Debug, Clone, PartialEq)]
pub struct FitOutcome {
    /// The fitted sigmoidal trace.
    pub trace: SigmoidTrace,
    /// Root-mean-square error (volts) between fit and (clipped) waveform.
    pub rms_error: f64,
    /// LM iterations used.
    pub iterations: usize,
}

/// The least-squares problem for Eq. 2: residuals between the normalized
/// waveform and a sum of sigmoids minus the level offset `k`.
struct TraceProblem {
    /// Scaled sample times.
    xs: Vec<f64>,
    /// Normalized voltages (`v / vdd`).
    ys: Vec<f64>,
    /// Per-sample weights (inflection emphasis).
    ws: Vec<f64>,
    /// Fixed polarity (+1/-1) of each transition; the optimizer fits
    /// magnitudes so transitions can never flip direction.
    signs: Vec<f64>,
    /// Level offset `k` of Eq. 2.
    offset: f64,
}

impl TraceProblem {
    fn model(&self, p: &[f64], x: f64) -> f64 {
        let mut s = -self.offset;
        for (j, sign) in self.signs.iter().enumerate() {
            let a = sign * p[2 * j].abs();
            let b = p[2 * j + 1];
            s += Sigmoid { a, b }.eval_scaled(x);
        }
        s
    }
}

impl LeastSquaresProblem for TraceProblem {
    fn residual_count(&self) -> usize {
        self.xs.len()
    }
    fn parameter_count(&self) -> usize {
        2 * self.signs.len()
    }
    fn residuals(&self, p: &[f64], out: &mut [f64]) {
        for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
            out[i] = y - self.model(p, x);
        }
    }
    fn jacobian(&self, p: &[f64], out: &mut Matrix) {
        // ∂r/∂a = -sign(a_param) · sign_j · f(1-f)(x-b); ∂r/∂b = a f(1-f)
        for (i, &x) in self.xs.iter().enumerate() {
            for (j, sign) in self.signs.iter().enumerate() {
                let a_mag = p[2 * j].abs();
                let a = sign * a_mag;
                let b = p[2 * j + 1];
                let f = Sigmoid {
                    a: if a == 0.0 { 1e-9 } else { a },
                    b,
                }
                .eval_scaled(x);
                let d = f * (1.0 - f);
                let dsign = if p[2 * j] >= 0.0 { 1.0 } else { -1.0 };
                out[(i, 2 * j)] = -dsign * sign * d * (x - b);
                out[(i, 2 * j + 1)] = a * d;
            }
        }
    }
    fn weights(&self) -> Option<&[f64]> {
        Some(&self.ws)
    }
}

/// Fits a sigmoidal approximation (Eq. 2) to an analog waveform.
///
/// The pipeline follows Sec. II of the paper:
/// 1. clip the waveform to `[0, vdd]`,
/// 2. detect `vdd/2` crossings to obtain one sigmoid per transition with
///    crossing-time/slope initial guesses,
/// 3. weight samples near the inflection points,
/// 4. refine all `(aᵢ, bᵢ)` jointly with Levenberg–Marquardt.
///
/// A waveform with no crossings yields a constant trace.
///
/// # Errors
///
/// Returns [`WaveformFitError`] if the optimizer cannot run or the fitted
/// parameters violate trace invariants.
pub fn fit_waveform(
    waveform: &Waveform,
    options: &FitOptions,
) -> Result<FitOutcome, WaveformFitError> {
    let vdd = options.vdd;
    let clipped = waveform.clipped(0.0, vdd);
    let threshold = vdd / 2.0;
    let crossings = clipped.crossings(threshold);
    let initial_level = Level::from_bool(clipped.values()[0] > threshold);

    if crossings.is_empty() {
        return Ok(FitOutcome {
            trace: SigmoidTrace::constant(initial_level, vdd),
            rms_error: flat_rms(&clipped, initial_level, vdd),
            iterations: 0,
        });
    }

    // Initial guesses from crossing times and local slopes.
    let mut signs = Vec::with_capacity(crossings.len());
    let mut p0 = Vec::with_capacity(2 * crossings.len());
    for &(tc, dir) in &crossings {
        // Local slope in V per scaled time unit, then
        // vdd · a / 4 = |dV/dx|  =>  a = 4 |slope| / vdd.
        let slope_scaled = clipped.derivative_at(tc) / TIME_SCALE;
        let a_mag = (4.0 * slope_scaled.abs() / vdd).max(0.5);
        signs.push(match dir {
            CrossingDirection::Rising => 1.0,
            CrossingDirection::Falling => -1.0,
        });
        p0.push(a_mag);
        p0.push(to_scaled_time(tc));
    }
    let offset = signs.iter().filter(|s| **s < 0.0).count() as f64
        - if initial_level.is_high() { 1.0 } else { 0.0 };

    // Sample the clipped waveform uniformly for the residuals.
    let n = options.samples.max(2 * crossings.len() + 8);
    let resampled = clipped.resampled(n);
    let xs: Vec<f64> = resampled
        .times()
        .iter()
        .map(|&t| to_scaled_time(t))
        .collect();
    let ys: Vec<f64> = resampled.values().iter().map(|&v| v / vdd).collect();
    let band = options.inflection_band * vdd;
    let ws: Vec<f64> = resampled
        .values()
        .iter()
        .map(|&v| {
            let d = (v - threshold) / band;
            1.0 + options.inflection_weight * (-d * d).exp()
        })
        .collect();

    let problem = TraceProblem {
        xs,
        ys,
        ws,
        signs: signs.clone(),
        offset,
    };
    let report = fit(&problem, &p0, &options.lm)?;

    // Assemble the trace: reapply polarities, enforce ordering.
    let mut sigmoids: Vec<Sigmoid> = signs
        .iter()
        .enumerate()
        .map(|(j, sign)| Sigmoid {
            a: sign * report.params[2 * j].abs().max(1e-6),
            b: report.params[2 * j + 1],
        })
        .collect();
    // LM may nudge near-coincident crossings out of order; the crossing
    // *sequence* (and with it the polarity alternation) is authoritative,
    // so clamp the times monotone rather than re-sorting.
    for i in 1..sigmoids.len() {
        if sigmoids[i].b < sigmoids[i - 1].b {
            sigmoids[i].b = sigmoids[i - 1].b;
        }
    }
    let trace = SigmoidTrace::from_transitions(initial_level, sigmoids, vdd)
        .map_err(|e| WaveformFitError::InvalidTrace(e.to_string()))?;

    let fitted = trace.to_waveform(clipped.t_start(), clipped.t_end(), n.max(64));
    let rms = fitted.rms_difference(&clipped, n.max(64));
    Ok(FitOutcome {
        trace,
        rms_error: rms,
        iterations: report.iterations,
    })
}

fn flat_rms(w: &Waveform, level: Level, vdd: f64) -> f64 {
    let target = if level.is_high() { vdd } else { 0.0 };
    let n = w.len();
    let sum: f64 = w.values().iter().map(|v| (v - target) * (v - target)).sum();
    (sum / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigwave::VDD_DEFAULT;

    fn synth_trace(transitions: Vec<Sigmoid>, initial: Level) -> SigmoidTrace {
        SigmoidTrace::from_transitions(initial, transitions, VDD_DEFAULT).unwrap()
    }

    #[test]
    fn recovers_single_transition() {
        let truth = synth_trace(vec![Sigmoid::rising(12.0, 2.0)], Level::Low);
        let wave = truth.to_waveform(0.0, 5e-10, 500);
        let out = fit_waveform(&wave, &FitOptions::default()).unwrap();
        assert_eq!(out.trace.len(), 1);
        let s = out.trace.transitions()[0];
        assert!((s.a - 12.0).abs() < 0.2, "a = {}", s.a);
        assert!((s.b - 2.0).abs() < 0.01, "b = {}", s.b);
        assert!(out.rms_error < 1e-3);
    }

    #[test]
    fn recovers_double_pulse() {
        let truth = synth_trace(
            vec![
                Sigmoid::rising(9.0, 1.0),
                Sigmoid::falling(14.0, 2.2),
                Sigmoid::rising(20.0, 3.0),
                Sigmoid::falling(7.0, 4.5),
            ],
            Level::Low,
        );
        let wave = truth.to_waveform(0.0, 7e-10, 900);
        let out = fit_waveform(&wave, &FitOptions::default()).unwrap();
        assert_eq!(out.trace.len(), 4);
        for (fitted, truth) in out.trace.transitions().iter().zip(truth.transitions()) {
            assert!(
                (fitted.b - truth.b).abs() < 0.02,
                "b {} vs {}",
                fitted.b,
                truth.b
            );
            assert!(
                (fitted.a - truth.a).abs() / truth.a.abs() < 0.1,
                "a {} vs {}",
                fitted.a,
                truth.a
            );
        }
    }

    #[test]
    fn fits_high_start() {
        let truth = synth_trace(
            vec![Sigmoid::falling(15.0, 1.5), Sigmoid::rising(15.0, 3.0)],
            Level::High,
        );
        let wave = truth.to_waveform(0.0, 5e-10, 600);
        let out = fit_waveform(&wave, &FitOptions::default()).unwrap();
        assert_eq!(out.trace.initial(), Level::High);
        assert_eq!(out.trace.len(), 2);
        assert!(out.rms_error < 1e-3, "rms {}", out.rms_error);
    }

    #[test]
    fn constant_waveform_yields_constant_trace() {
        let wave = Waveform::from_fn(0.0, 1e-10, 50, |_| 0.01);
        let out = fit_waveform(&wave, &FitOptions::default()).unwrap();
        assert!(out.trace.is_empty());
        assert_eq!(out.trace.initial(), Level::Low);
    }

    #[test]
    fn clipping_handles_overshoot() {
        // Truth plus a 15% overshoot after the rise: fit should still land
        // close to the underlying transition.
        let truth = Sigmoid::rising(10.0, 2.0);
        let wave = Waveform::from_fn(0.0, 5e-10, 600, |t| {
            let base = VDD_DEFAULT * truth.eval_seconds(t);
            let x = to_scaled_time(t);
            let bump = 0.15 * VDD_DEFAULT * (-(x - 2.6) * (x - 2.6) / 0.05).exp();
            base + bump
        });
        let out = fit_waveform(&wave, &FitOptions::default()).unwrap();
        assert_eq!(out.trace.len(), 1);
        let s = out.trace.transitions()[0];
        assert!((s.b - 2.0).abs() < 0.05, "b = {}", s.b);
    }

    #[test]
    fn noisy_waveform_fit_is_robust() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let truth = synth_trace(
            vec![Sigmoid::rising(10.0, 1.0), Sigmoid::falling(10.0, 3.0)],
            Level::Low,
        );
        let clean = truth.to_waveform(0.0, 5e-10, 700);
        let noisy = Waveform::new(
            clean.times().to_vec(),
            clean
                .values()
                .iter()
                .map(|v| v + rng.gen_range(-0.01..0.01))
                .collect(),
        )
        .unwrap();
        let out = fit_waveform(&noisy, &FitOptions::default()).unwrap();
        assert_eq!(out.trace.len(), 2);
        assert!((out.trace.transitions()[0].b - 1.0).abs() < 0.05);
        assert!((out.trace.transitions()[1].b - 3.0).abs() < 0.05);
    }

    #[test]
    fn fit_improves_on_initial_guess() {
        // Asymmetric ramp waveform: the refined sigmoid must beat the
        // crossing-only guess in RMS.
        let wave = Waveform::from_fn(0.0, 4e-10, 400, |t| {
            let x = to_scaled_time(t);
            (VDD_DEFAULT * (0.5 + 0.5 * ((x - 2.0) / 0.8).tanh())).clamp(0.0, VDD_DEFAULT)
        });
        let out = fit_waveform(&wave, &FitOptions::default()).unwrap();
        assert!(out.rms_error < 0.02, "rms {}", out.rms_error);
    }
}
