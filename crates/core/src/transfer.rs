//! The TOM transfer function abstraction (Eq. 3) and its backends.
//!
//! A transfer function predicts, for one relevant input of a gate, the next
//! output transition's slope and delay:
//!
//! `(a_out, b_out − b_in) = F_G(T, a_prev_out, a_in)` with
//! `T = b_in − b_prev_out`.
//!
//! The paper implements `F↑`/`F↓` with four small MLPs; it also mentions
//! interpolation polynomials and look-up tables generated "for comparison
//! purposes" — all three backends are provided here.

use serde::{Deserialize, Serialize};
use sigchar::{Dataset, TransferSample, T_FAR};

/// A prediction of the next output transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPrediction {
    /// Slope of the output transition (sign = polarity).
    pub a_out: f64,
    /// Input-to-output delay `b_out − b_in` in scaled units.
    pub delay: f64,
}

/// The query to a transfer function (all in scaled units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferQuery {
    /// History interval `T = b_in − b_prev_out` (clamped internally).
    pub t: f64,
    /// Slope of the current input transition.
    pub a_in: f64,
    /// Slope of the previous output transition.
    pub a_prev_out: f64,
}

impl TransferQuery {
    /// Clamps the history interval into the trained domain `(0, T_FAR]`.
    #[must_use]
    pub fn clamped(self) -> Self {
        Self {
            t: self.t.min(T_FAR),
            ..self
        }
    }

    /// Feature vector, ordered as in [`TransferSample::features`].
    #[must_use]
    pub fn features(&self) -> [f64; 3] {
        [self.t, self.a_in, self.a_prev_out]
    }
}

/// A gate transfer function for one input polarity pair (`F↑` and `F↓`
/// bundled): given the current input transition and the previous output
/// transition, predict the next output transition.
pub trait TransferFunction {
    /// Predicts the next output transition. Implementations receive the
    /// query already clamped to the trained domain.
    fn predict(&self, query: TransferQuery) -> TransferPrediction;

    /// Predicts a batch of independent queries, overwriting `out` with one
    /// prediction per query (same order).
    ///
    /// The default implementation is the scalar loop, so external
    /// implementations keep compiling unchanged. Backends with a cheaper
    /// batch form (one matrix pass per MLP layer for [`crate::AnnTransfer`],
    /// scratch reuse for [`crate::LutTransfer`]) override it; every
    /// override must stay bit-identical to the scalar loop per query — the
    /// levelized simulator's determinism guarantee rests on that (see
    /// `docs/architecture.md` § Levelized batched engine).
    fn predict_batch(&self, queries: &[TransferQuery], out: &mut Vec<TransferPrediction>) {
        out.clear();
        out.reserve(queries.len());
        out.extend(queries.iter().map(|&q| self.predict(q)));
    }

    /// A short human-readable backend name (for reports).
    fn backend_name(&self) -> &'static str;
}

/// Splits a dataset's samples into the four scalar regression problems the
/// paper trains (rising/falling × slope/delay) and exposes shared feature
/// extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Rising current input transition (`F↑`).
    Rising,
    /// Falling current input transition (`F↓`).
    Falling,
}

/// Borrowing view over the polarity half of a dataset.
#[must_use]
pub fn polarity_samples(dataset: &Dataset, polarity: Polarity) -> &[TransferSample] {
    match polarity {
        Polarity::Rising => &dataset.rising,
        Polarity::Falling => &dataset.falling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigchar::GateTag;

    #[test]
    fn query_clamps_to_t_far() {
        let q = TransferQuery {
            t: 100.0,
            a_in: 5.0,
            a_prev_out: -5.0,
        };
        assert_eq!(q.clamped().t, T_FAR);
        let q2 = TransferQuery { t: 0.5, ..q };
        assert_eq!(q2.clamped().t, 0.5);
    }

    #[test]
    fn polarity_view() {
        let mut d = Dataset::new(GateTag::NorFo1);
        d.push(TransferSample {
            t: 1.0,
            a_in: 2.0,
            a_prev_out: -3.0,
            a_out: -4.0,
            delay: 0.1,
        });
        assert_eq!(polarity_samples(&d, Polarity::Rising).len(), 1);
        assert!(polarity_samples(&d, Polarity::Falling).is_empty());
    }
}
