//! The Third-Order Model (TOM): the core contribution of *Signal Prediction
//! for Digital Circuits by Sigmoidal Approximations using Neural Networks*
//! (DATE 2025).
//!
//! Signal traces are sums of sigmoids (see the `sigwave` crate); a gate is
//! described by a *transfer function* (Eq. 3) predicting the next output
//! sigmoid's slope and delay from the current input sigmoid and the
//! previous output sigmoid:
//!
//! `(a_out, b_out − b_in) = F_G(b_in − b_prev_out, a_in, a_prev_out)`
//!
//! This crate provides:
//!
//! * [`TransferFunction`] — the abstraction, with three backends:
//!   [`AnnTransfer`] (the paper's four 3→10→10→5→1 ReLU MLPs),
//!   [`LutTransfer`] and [`PolyTransfer`] (the look-up-table and
//!   interpolation-polynomial comparisons the paper mentions).
//! * [`ValidRegion`] — concave-hull-style containment of queries to the
//!   trained domain with projection (Sec. IV-B).
//! * [`predict_single_input`] — Algorithm 1, including sub-threshold pulse
//!   removal and transition cancellation (Sec. III).
//! * [`predict_nor`] — the multi-input decision procedure reducing a NOR
//!   gate to per-input single-input predictions.
//! * [`plan_cell`]/[`GatePlan`]/[`apply_plan`] — the plan → apply split of
//!   Algorithm 1, generalized to every library cell ([`CellFunction`]:
//!   INV/BUF/NOR/OR/NAND/AND): planning resolves the relevant input
//!   transitions under the cell's masking rule (others low for NOR/OR,
//!   others high for NAND/AND), the query/apply loop lets a
//!   level-scheduled simulator batch the pending queries of many gates
//!   through one [`TransferFunction::predict_batch`] call per model
//!   (bit-identical to the scalar loop; see `docs/architecture.md`).
//!   [`plan_nor`]/[`NorPlan`]/[`apply_nor`] remain as the NOR-only
//!   vocabulary of the original prototype.
//! * [`PlanTemplate`] — the compile/execute split of planning: the
//!   circuit-only half (cell function, arity, masking/pass level) is
//!   resolved once per gate, and [`PlanTemplate::bind`] instantiates the
//!   per-run plan from the stimulus without recomputing masks —
//!   bit-identical to [`plan_cell`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use sigtom::{GateModel, TomOptions, predict_single_input,
//!              TransferFunction, TransferPrediction, TransferQuery};
//! use sigwave::{Level, Sigmoid, SigmoidTrace, VDD_DEFAULT};
//!
//! // A toy transfer function: constant 5 ps delay, fixed output slope.
//! struct Fixed;
//! impl TransferFunction for Fixed {
//!     fn predict(&self, q: TransferQuery) -> TransferPrediction {
//!         TransferPrediction { a_out: -q.a_in.signum() * 14.0, delay: 0.05 }
//!     }
//!     fn backend_name(&self) -> &'static str { "fixed" }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = GateModel::new(Arc::new(Fixed));
//! let input = SigmoidTrace::from_transitions(
//!     Level::Low, vec![Sigmoid::rising(12.0, 1.0)], VDD_DEFAULT)?;
//! let out = predict_single_input(&model, &input, Level::High, TomOptions::default());
//! assert_eq!(out.len(), 1);
//! assert!((out.transitions()[0].b - 1.05).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod ann;
mod baselines;
mod region;
mod transfer;

pub use algorithm::{
    apply_nor, apply_plan, plan_cell, plan_nor, plan_single_input, predict_nor,
    predict_single_input, traces_bit_identical, CellFunction, GateModel, GatePlan, NorPlan,
    PlanScratch, PlanTemplate, TomOptions,
};
pub use ann::{AnnTrainConfig, AnnTransfer, TrainTransferError};
pub use baselines::{LutTransfer, PolyTransfer};
pub use region::ValidRegion;
pub use transfer::{
    polarity_samples, Polarity, TransferFunction, TransferPrediction, TransferQuery,
};
