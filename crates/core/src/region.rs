//! Valid-region containment (Sec. IV-B).
//!
//! ANNs behave arbitrarily outside their training set, and prediction
//! errors amplify along gate chains. The paper computes the *concave hull*
//! of the 3-D training inputs and projects out-of-region queries onto it.
//! Concave hulls are not uniquely defined (the paper cites Moreira &
//! Santos' k-nearest-neighbour construction); we use the equivalent
//! kNN-distance membership test: a query is *inside* if its distance to the
//! nearest training point is within a data-derived threshold, and
//! projection snaps the query to the nearest training point. A kd-tree
//! makes both operations `O(log n)`.

use serde::{Deserialize, Serialize};

use crate::transfer::TransferQuery;

/// A 3-D point in (normalized) transfer-feature space.
type Point = [f64; 3];

/// kd-tree node in implicit array layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KdNode {
    point: Point,
    /// Split axis at this node (depth % 3).
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// The valid input region of a trained transfer function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidRegion {
    nodes: Vec<KdNode>,
    root: Option<usize>,
    /// Per-axis normalization scale (so distances weigh T and slopes
    /// comparably).
    scales: [f64; 3],
    /// Inside iff nearest-neighbour distance (normalized) ≤ threshold.
    threshold: f64,
}

impl ValidRegion {
    /// Builds the region from the feature vectors of a training set.
    ///
    /// `margin` scales the membership threshold relative to the data's own
    /// typical nearest-neighbour spacing (≥ 1; the paper-equivalent
    /// "concave hull tightness" knob — larger is more permissive). A good
    /// default is 3.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or `margin` is not positive.
    #[must_use]
    pub fn build(points: &[[f64; 3]], margin: f64) -> Self {
        assert!(!points.is_empty(), "valid region needs training points");
        assert!(margin > 0.0, "margin must be positive");
        // Normalize each axis by its spread.
        let mut scales = [1.0f64; 3];
        for axis in 0..3 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in points {
                lo = lo.min(p[axis]);
                hi = hi.max(p[axis]);
            }
            let spread = (hi - lo).abs();
            scales[axis] = if spread > 1e-12 { spread } else { 1.0 };
        }
        let normalized: Vec<Point> = points
            .iter()
            .map(|p| [p[0] / scales[0], p[1] / scales[1], p[2] / scales[2]])
            .collect();

        let mut region = Self {
            nodes: Vec::with_capacity(points.len()),
            root: None,
            scales,
            threshold: 0.0,
        };
        let mut idx: Vec<usize> = (0..normalized.len()).collect();
        region.root = region.build_rec(&normalized, &mut idx, 0);

        // Typical spacing: median nearest-neighbour distance (each point
        // queried against the tree excluding itself would need bookkeeping;
        // the second-nearest of a self-query is the same thing).
        let mut nn: Vec<f64> = normalized
            .iter()
            .map(|p| region.two_nearest(*p).1)
            .filter(|d| d.is_finite())
            .collect();
        nn.sort_by(f64::total_cmp);
        // Fallback for degenerate (single-point) regions: a tight default
        // of 5% of the normalized spread.
        let median = if nn.is_empty() {
            0.05
        } else {
            nn[nn.len() / 2].max(1e-9)
        };
        region.threshold = margin * median;
        region
    }

    fn build_rec(&mut self, pts: &[Point], idx: &mut [usize], depth: usize) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let axis = depth % 3;
        idx.sort_by(|&a, &b| pts[a][axis].total_cmp(&pts[b][axis]));
        let mid = idx.len() / 2;
        let point = pts[idx[mid]];
        let slot = self.nodes.len();
        self.nodes.push(KdNode {
            point,
            axis,
            left: None,
            right: None,
        });
        let (left_idx, rest) = idx.split_at_mut(mid);
        let right_idx = &mut rest[1..];
        let left = self.build_rec(pts, left_idx, depth + 1);
        let right = self.build_rec(pts, right_idx, depth + 1);
        self.nodes[slot].left = left;
        self.nodes[slot].right = right;
        Some(slot)
    }

    /// Nearest and second-nearest distances from `q` (normalized space).
    fn two_nearest(&self, q: Point) -> (f64, f64) {
        let mut best = (f64::INFINITY, f64::INFINITY, None::<Point>);
        self.search(self.root, q, &mut best);
        (best.0.sqrt(), best.1.sqrt())
    }

    fn nearest_point(&self, q: Point) -> (f64, Point) {
        let mut best = (f64::INFINITY, f64::INFINITY, None::<Point>);
        self.search(self.root, q, &mut best);
        (best.0.sqrt(), best.2.expect("tree non-empty"))
    }

    fn search(&self, node: Option<usize>, q: Point, best: &mut (f64, f64, Option<Point>)) {
        let Some(i) = node else { return };
        let n = &self.nodes[i];
        let d2 = dist2(n.point, q);
        if d2 < best.0 {
            best.1 = best.0;
            best.0 = d2;
            best.2 = Some(n.point);
        } else if d2 < best.1 {
            best.1 = d2;
        }
        let delta = q[n.axis] - n.point[n.axis];
        let (near, far) = if delta < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.search(near, q, best);
        if delta * delta < best.1 {
            self.search(far, q, best);
        }
    }

    fn normalize(&self, q: &TransferQuery) -> Point {
        [
            q.t / self.scales[0],
            q.a_in / self.scales[1],
            q.a_prev_out / self.scales[2],
        ]
    }

    /// `true` if the query lies inside the valid region.
    #[must_use]
    pub fn contains(&self, query: &TransferQuery) -> bool {
        let (d, _) = self.two_nearest(self.normalize(query));
        d <= self.threshold
    }

    /// Projects the query into the region: queries already inside are
    /// returned unchanged, outside queries snap to the closest training
    /// point ("compute the closest point on the concave hull and use these
    /// coordinates as inputs instead", Sec. IV-B).
    #[must_use]
    pub fn project(&self, query: TransferQuery) -> TransferQuery {
        if self.contains(&query) {
            return query;
        }
        let (_, p) = self.nearest_point(self.normalize(&query));
        TransferQuery {
            t: p[0] * self.scales[0],
            a_in: p[1] * self.scales[1],
            a_prev_out: p[2] * self.scales[2],
        }
    }

    /// Number of stored training points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false`: construction requires at least one point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Builds the region from a dataset's polarity half.
    #[must_use]
    pub fn from_samples(samples: &[sigchar::TransferSample], margin: f64) -> Self {
        let pts: Vec<[f64; 3]> = samples.iter().map(|s| s.features()).collect();
        Self::build(&pts, margin)
    }
}

fn dist2(a: Point, b: Point) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid() -> Vec<[f64; 3]> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                for k in 0..5 {
                    pts.push([i as f64 * 0.1, 5.0 + j as f64, -(5.0 + k as f64)]);
                }
            }
        }
        pts
    }

    fn q(t: f64, a_in: f64, a_prev: f64) -> TransferQuery {
        TransferQuery {
            t,
            a_in,
            a_prev_out: a_prev,
        }
    }

    #[test]
    fn training_points_are_inside() {
        let r = ValidRegion::build(&grid(), 3.0);
        for p in grid().iter().step_by(17) {
            assert!(r.contains(&q(p[0], p[1], p[2])));
        }
    }

    #[test]
    fn far_points_are_outside() {
        let r = ValidRegion::build(&grid(), 3.0);
        assert!(!r.contains(&q(100.0, 5.0, -5.0)));
        assert!(!r.contains(&q(0.5, 500.0, -5.0)));
    }

    #[test]
    fn projection_is_idempotent_and_inside() {
        let r = ValidRegion::build(&grid(), 3.0);
        let outside = q(50.0, 80.0, -40.0);
        let p = r.project(outside);
        assert!(r.contains(&p), "projected point must be inside");
        let pp = r.project(p);
        assert_eq!(p, pp, "projection must be idempotent");
    }

    #[test]
    fn inside_projection_is_identity() {
        let r = ValidRegion::build(&grid(), 3.0);
        let inside = q(0.41, 7.03, -6.97);
        assert!(r.contains(&inside));
        assert_eq!(r.project(inside), inside);
    }

    #[test]
    fn concavity_hole_detected() {
        // Points on a ring (hole in the middle): a convex hull would call
        // the centre inside, the kNN region must not.
        let mut pts = Vec::new();
        for i in 0..200 {
            let ang = i as f64 * std::f64::consts::TAU / 200.0;
            pts.push([10.0 * ang.cos(), 10.0 * ang.sin(), 0.0]);
        }
        let r = ValidRegion::build(&pts, 2.0);
        assert!(
            !r.contains(&q(0.0, 0.0, 0.0)),
            "hole centre must be outside the concave region"
        );
        assert!(r.contains(&q(10.0, 0.0, 0.0)));
    }

    #[test]
    fn single_point_region() {
        let r = ValidRegion::build(&[[1.0, 2.0, 3.0]], 3.0);
        assert_eq!(r.len(), 1);
        let proj = r.project(q(9.0, 9.0, 9.0));
        assert!((proj.t - 1.0).abs() < 1e-9);
        assert!((proj.a_in - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "needs training points")]
    fn empty_rejected() {
        let _ = ValidRegion::build(&[], 3.0);
    }

    proptest! {
        #[test]
        fn nearest_matches_brute_force(
            pts in proptest::collection::vec(
                proptest::array::uniform3(-10.0..10.0f64), 1..60),
            probe in proptest::array::uniform3(-15.0..15.0f64),
        ) {
            let r = ValidRegion::build(&pts, 3.0);
            let query = q(probe[0], probe[1], probe[2]);
            let norm = r.normalize(&query);
            let (d, _) = r.two_nearest(norm);
            // Brute force in the same normalized space.
            let brute = pts
                .iter()
                .map(|p| {
                    let n = [p[0] / r.scales[0], p[1] / r.scales[1], p[2] / r.scales[2]];
                    dist2(n, norm).sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            prop_assert!((d - brute).abs() < 1e-9, "kd {d} vs brute {brute}");
        }
    }
}
