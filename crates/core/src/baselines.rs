//! Non-ANN transfer-function backends the paper mentions generating "for
//! comparison purposes": a look-up-table style nearest-neighbour regressor
//! and an interpolation polynomial.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use sigchar::{Dataset, TransferSample};
use signn::simd::{self, SimdLevel};

use crate::ann::TrainTransferError;
use crate::transfer::{TransferFunction, TransferPrediction, TransferQuery};

thread_local! {
    /// Per-call SoA staging for the SIMD batch path: feature-major
    /// transposes of the two polarity tables plus the per-query
    /// distance buffer, reused across calls (the serialized table
    /// layout stays untouched).
    static LUT_SCRATCH: RefCell<LutScratch> = RefCell::new(LutScratch::default());
}

#[derive(Default)]
struct LutScratch {
    rising: Vec<f64>,
    falling: Vec<f64>,
    d2: Vec<f64>,
}

/// Transposes a sample table into feature-major SoA form (3 rows of
/// `samples.len()` values) for [`simd::scaled_distances_soa`].
fn transpose_features(samples: &[TransferSample], soa: &mut Vec<f64>) {
    let n = samples.len();
    soa.clear();
    soa.resize(3 * n, 0.0);
    for (r, s) in samples.iter().enumerate() {
        let f = s.features();
        soa[r] = f[0];
        soa[n + r] = f[1];
        soa[2 * n + r] = f[2];
    }
}

/// A look-up-table backend: inverse-distance-weighted k-nearest-neighbour
/// regression over the characterization samples (the scattered-data
/// generalization of a delay table like CSM/ECSM lookup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LutTransfer {
    rising: Vec<TransferSample>,
    falling: Vec<TransferSample>,
    scales: [f64; 3],
    k: usize,
}

impl LutTransfer {
    /// Builds the table from a dataset with `k` neighbours per query.
    ///
    /// # Errors
    ///
    /// Returns [`TrainTransferError`] if a polarity half is empty.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build(dataset: &Dataset, k: usize) -> Result<Self, TrainTransferError> {
        assert!(k > 0, "k must be positive");
        if dataset.rising.is_empty() {
            return Err(TrainTransferError::EmptyPolarity { which: "rising" });
        }
        if dataset.falling.is_empty() {
            return Err(TrainTransferError::EmptyPolarity { which: "falling" });
        }
        // Axis scales from the full data spread.
        let mut scales = [1.0f64; 3];
        for axis in 0..3 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for s in dataset.rising.iter().chain(&dataset.falling) {
                let f = s.features();
                lo = lo.min(f[axis]);
                hi = hi.max(f[axis]);
            }
            let spread = hi - lo;
            scales[axis] = if spread > 1e-12 { spread } else { 1.0 };
        }
        Ok(Self {
            rising: dataset.rising.clone(),
            falling: dataset.falling.clone(),
            scales,
            k,
        })
    }

    fn weighted(&self, samples: &[TransferSample], q: &TransferQuery) -> TransferPrediction {
        let mut best = Vec::with_capacity(self.k + 1);
        self.weighted_into(samples, q, &mut best)
    }

    fn weighted_into<'a>(
        &self,
        samples: &'a [TransferSample],
        q: &TransferQuery,
        best: &mut Vec<(f64, &'a TransferSample)>,
    ) -> TransferPrediction {
        let qf = q.features();
        // Collect (distance², sample) of the k nearest (linear scan: the
        // LUT baseline is about accuracy, not speed).
        best.clear();
        for s in samples {
            let f = s.features();
            let mut d2 = 0.0;
            for a in 0..3 {
                let d = (f[a] - qf[a]) / self.scales[a];
                d2 += d * d;
            }
            let pos = best.partition_point(|(bd, _)| *bd < d2);
            if pos < self.k {
                best.insert(pos, (d2, s));
                best.truncate(self.k);
            }
        }
        weight_neighbours(best)
    }

    /// The k-best selection and weighting over precomputed distances —
    /// the tail of [`LutTransfer::weighted_into`] with `d2s[i]` standing
    /// in for the inline computation. The insertion order (and therefore
    /// tie-breaking) is identical, and the SIMD distance kernel is
    /// bit-identical to the inline loop, so both paths select the same
    /// neighbours with the same weights.
    fn select_and_weight<'a>(
        &self,
        samples: &'a [TransferSample],
        d2s: &[f64],
        best: &mut Vec<(f64, &'a TransferSample)>,
    ) -> TransferPrediction {
        best.clear();
        for (s, &d2) in samples.iter().zip(d2s) {
            let pos = best.partition_point(|(bd, _)| *bd < d2);
            if pos < self.k {
                best.insert(pos, (d2, s));
                best.truncate(self.k);
            }
        }
        weight_neighbours(best)
    }
}

/// Inverse-distance weighting over the selected neighbours.
fn weight_neighbours(best: &[(f64, &TransferSample)]) -> TransferPrediction {
    let mut wsum = 0.0;
    let mut a_out = 0.0;
    let mut delay = 0.0;
    for (d2, s) in best {
        let w = 1.0 / (d2 + 1e-9);
        wsum += w;
        a_out += w * s.a_out;
        delay += w * s.delay;
    }
    TransferPrediction {
        a_out: a_out / wsum,
        delay: delay / wsum,
    }
}

impl TransferFunction for LutTransfer {
    fn predict(&self, query: TransferQuery) -> TransferPrediction {
        let q = query.clamped();
        let samples = if q.a_in > 0.0 {
            &self.rising
        } else {
            &self.falling
        };
        self.weighted(samples, &q)
    }

    /// Batch form: one shared neighbour scratch buffer across the whole
    /// batch instead of one allocation per query. Under an active SIMD
    /// level the sample tables are transposed into feature-major SoA
    /// scratch once per call and each query's distance sweep runs
    /// through [`simd::scaled_distances_soa`]; selection and weighting
    /// are unchanged, so results are bit-identical to the scalar path
    /// at every level.
    fn predict_batch(&self, queries: &[TransferQuery], out: &mut Vec<TransferPrediction>) {
        out.clear();
        out.reserve(queries.len());
        let mut best = Vec::with_capacity(self.k + 1);
        let level = simd::active_level();
        if level == SimdLevel::Scalar || queries.is_empty() {
            for query in queries {
                let q = query.clamped();
                let samples = if q.a_in > 0.0 {
                    &self.rising
                } else {
                    &self.falling
                };
                out.push(self.weighted_into(samples, &q, &mut best));
            }
            return;
        }
        LUT_SCRATCH.with(|cell| {
            let LutScratch {
                rising,
                falling,
                d2,
            } = &mut *cell.borrow_mut();
            transpose_features(&self.rising, rising);
            transpose_features(&self.falling, falling);
            for query in queries {
                let q = query.clamped();
                let (samples, soa) = if q.a_in > 0.0 {
                    (&self.rising[..], &rising[..])
                } else {
                    (&self.falling[..], &falling[..])
                };
                let n = samples.len();
                d2.clear();
                d2.resize(n, 0.0);
                let qf = q.features();
                simd::scaled_distances_soa(level, soa, n, &qf, &self.scales, d2);
                out.push(self.select_and_weight(samples, d2, &mut best));
            }
        });
    }

    fn backend_name(&self) -> &'static str {
        "lut"
    }
}

/// A quadratic interpolation-polynomial backend: ridge-regularized least
/// squares over the 10 monomials of degree ≤ 2 in `(T, a_in, a_prev_out)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolyTransfer {
    rise_slope: [f64; 10],
    rise_delay: [f64; 10],
    fall_slope: [f64; 10],
    fall_delay: [f64; 10],
}

fn monomials(f: [f64; 3]) -> [f64; 10] {
    let [x, y, z] = f;
    [1.0, x, y, z, x * x, y * y, z * z, x * y, x * z, y * z]
}

fn ridge_fit(samples: &[TransferSample], target: impl Fn(&TransferSample) -> f64) -> [f64; 10] {
    // Normal equations (XᵀX + λI) w = Xᵀy via sigfit's Cholesky.
    use sigfit::linalg::Matrix;
    let m = samples.len();
    let x = Matrix::from_fn(m, 10, |i, j| monomials(samples[i].features())[j]);
    let y: Vec<f64> = samples.iter().map(&target).collect();
    let mut gram = x.gram();
    for i in 0..10 {
        gram[(i, i)] += 1e-6 * (m as f64);
    }
    let rhs = x.transpose_mul_vec(&y);
    let w = gram
        .cholesky_solve(&rhs)
        .expect("ridge-regularized Gram matrix is SPD");
    let mut out = [0.0; 10];
    out.copy_from_slice(&w);
    out
}

impl PolyTransfer {
    /// Fits the four polynomials from a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainTransferError`] if a polarity half is empty.
    pub fn fit(dataset: &Dataset) -> Result<Self, TrainTransferError> {
        if dataset.rising.is_empty() {
            return Err(TrainTransferError::EmptyPolarity { which: "rising" });
        }
        if dataset.falling.is_empty() {
            return Err(TrainTransferError::EmptyPolarity { which: "falling" });
        }
        Ok(Self {
            rise_slope: ridge_fit(&dataset.rising, |s| s.a_out),
            rise_delay: ridge_fit(&dataset.rising, |s| s.delay),
            fall_slope: ridge_fit(&dataset.falling, |s| s.a_out),
            fall_delay: ridge_fit(&dataset.falling, |s| s.delay),
        })
    }
}

impl TransferFunction for PolyTransfer {
    fn predict(&self, query: TransferQuery) -> TransferPrediction {
        let q = query.clamped();
        let phi = monomials(q.features());
        let (ws, wd) = if q.a_in > 0.0 {
            (&self.rise_slope, &self.rise_delay)
        } else {
            (&self.fall_slope, &self.fall_delay)
        };
        let dot = |w: &[f64; 10]| w.iter().zip(&phi).map(|(a, b)| a * b).sum::<f64>();
        TransferPrediction {
            a_out: dot(ws),
            delay: dot(wd),
        }
    }

    /// Batch form: the polynomial evaluation is already allocation-free,
    /// so the batch pass is the scalar loop with a single `reserve`.
    fn predict_batch(&self, queries: &[TransferQuery], out: &mut Vec<TransferPrediction>) {
        out.clear();
        out.reserve(queries.len());
        out.extend(queries.iter().map(|&q| self.predict(q)));
    }

    fn backend_name(&self) -> &'static str {
        "poly"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigchar::{Dataset, GateTag, T_FAR};

    fn synthetic(n: usize) -> Dataset {
        // Quadratic-friendly law so the polynomial can fit it well.
        let mut d = Dataset::new(GateTag::NorFo1);
        for i in 0..n {
            let t = 0.1 + (i as f64 / n as f64) * (T_FAR - 0.1);
            for &a_in in &[5.0f64, 10.0, 20.0, -5.0, -10.0, -20.0] {
                let a_prev = -a_in * 0.8;
                let delay = 0.04 + 0.01 * t - 0.001 * t * t + 0.3 / a_in.abs();
                let a_out = -a_in * 0.9 + 0.2 * t;
                d.push(TransferSample {
                    t,
                    a_in,
                    a_prev_out: a_prev,
                    a_out,
                    delay,
                });
            }
        }
        d
    }

    #[test]
    fn lut_exact_on_training_points() {
        let d = synthetic(20);
        let lut = LutTransfer::build(&d, 1).unwrap();
        let s = d.rising[7];
        let p = lut.predict(TransferQuery {
            t: s.t,
            a_in: s.a_in,
            a_prev_out: s.a_prev_out,
        });
        assert!((p.a_out - s.a_out).abs() < 1e-6);
        assert!((p.delay - s.delay).abs() < 1e-6);
    }

    #[test]
    fn lut_interpolates_smoothly() {
        let d = synthetic(40);
        let lut = LutTransfer::build(&d, 4).unwrap();
        let p = lut.predict(TransferQuery {
            t: 1.234,
            a_in: 10.0,
            a_prev_out: -8.0,
        });
        // Neighbours bound the prediction.
        assert!(p.delay > 0.03 && p.delay < 0.1, "{p:?}");
    }

    #[test]
    fn poly_fits_quadratic_law_closely() {
        let d = synthetic(30);
        let poly = PolyTransfer::fit(&d).unwrap();
        let q = TransferQuery {
            t: 1.5,
            a_in: 12.0,
            a_prev_out: -9.6,
        };
        let truth_delay = 0.04 + 0.01 * 1.5 - 0.001 * 1.5 * 1.5 + 0.3 / 12.0;
        let truth_a = -12.0 * 0.9 + 0.2 * 1.5;
        let p = poly.predict(q);
        assert!(
            (p.delay - truth_delay).abs() < 5e-3,
            "{p:?} vs {truth_delay}"
        );
        assert!((p.a_out - truth_a).abs() / truth_a.abs() < 0.05);
    }

    #[test]
    fn batch_predictions_bit_identical_to_scalar() {
        let d = synthetic(25);
        let queries: Vec<TransferQuery> = (0..12)
            .map(|i| TransferQuery {
                t: 0.2 + 0.3 * i as f64,
                a_in: if i % 2 == 0 { 9.0 } else { -13.0 },
                a_prev_out: if i % 2 == 0 { -7.0 } else { 11.0 },
            })
            .collect();
        let lut = LutTransfer::build(&d, 3).unwrap();
        let poly = PolyTransfer::fit(&d).unwrap();
        let mut out = Vec::new();
        lut.predict_batch(&queries, &mut out);
        for (q, p) in queries.iter().zip(&out) {
            assert_eq!(*p, lut.predict(*q));
        }
        poly.predict_batch(&queries, &mut out);
        for (q, p) in queries.iter().zip(&out) {
            assert_eq!(*p, poly.predict(*q));
        }
    }

    #[test]
    fn lut_batch_simd_levels_bit_identical() {
        use signn::simd::{set_policy, SimdPolicy};
        let d = synthetic(33);
        let lut = LutTransfer::build(&d, 3).unwrap();
        // Odd count so the SIMD paths exercise their remainder lanes.
        let queries: Vec<TransferQuery> = (0..17)
            .map(|i| TransferQuery {
                t: 0.15 + 0.21 * i as f64,
                a_in: if i % 3 == 0 { 8.5 } else { -12.5 },
                a_prev_out: if i % 3 == 0 { -6.5 } else { 10.5 },
            })
            .collect();
        set_policy(SimdPolicy::Off);
        let mut reference = Vec::new();
        lut.predict_batch(&queries, &mut reference);
        for level in SimdLevel::available() {
            set_policy(SimdPolicy::Force(level));
            let mut out = Vec::new();
            lut.predict_batch(&queries, &mut out);
            for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.a_out.to_bits(),
                    b.a_out.to_bits(),
                    "{} query {i}",
                    level.as_str()
                );
                assert_eq!(
                    a.delay.to_bits(),
                    b.delay.to_bits(),
                    "{} query {i}",
                    level.as_str()
                );
            }
        }
        set_policy(SimdPolicy::Auto);
    }

    #[test]
    fn backends_report_names() {
        let d = synthetic(5);
        assert_eq!(LutTransfer::build(&d, 2).unwrap().backend_name(), "lut");
        assert_eq!(PolyTransfer::fit(&d).unwrap().backend_name(), "poly");
    }

    #[test]
    fn empty_polarity_rejected() {
        let mut d = Dataset::new(GateTag::Inverter);
        d.push(TransferSample {
            t: 1.0,
            a_in: 5.0,
            a_prev_out: -5.0,
            a_out: -7.0,
            delay: 0.05,
        });
        assert!(LutTransfer::build(&d, 2).is_err());
        assert!(PolyTransfer::fit(&d).is_err());
    }
}
