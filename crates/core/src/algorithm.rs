//! Algorithm 1: output parameter prediction for single-input gates, plus
//! the sub-threshold pulse removal and the multi-input decision procedure
//! described in Sec. III.

use std::borrow::Cow;
use std::sync::Arc;

use sigwave::{Level, Sigmoid, SigmoidTrace};

use sigchar::{DUMMY_SLOPE, T_FAR};

use crate::region::ValidRegion;
use crate::transfer::{TransferFunction, TransferQuery};

/// A gate model: a transfer function plus (optionally) its valid region.
#[derive(Clone)]
pub struct GateModel {
    /// The transfer backend (ANN in the paper, LUT/poly for comparison).
    pub transfer: Arc<dyn TransferFunction + Send + Sync>,
    /// Valid-region containment (Sec. IV-B); `None` disables projection
    /// (an ablation the benchmarks exercise).
    pub region: Option<Arc<ValidRegion>>,
}

impl std::fmt::Debug for GateModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateModel")
            .field("backend", &self.transfer.backend_name())
            .field("region", &self.region.as_ref().map(|r| r.len()))
            .finish()
    }
}

impl GateModel {
    /// A model without valid-region projection.
    #[must_use]
    pub fn new(transfer: Arc<dyn TransferFunction + Send + Sync>) -> Self {
        Self {
            transfer,
            region: None,
        }
    }

    /// Attaches a valid region.
    #[must_use]
    pub fn with_region(mut self, region: Arc<ValidRegion>) -> Self {
        self.region = Some(region);
        self
    }

    /// Clamps a raw query to the trained domain and (when a region is
    /// attached) projects it into the valid region — the per-query
    /// preparation shared by the scalar and batch paths.
    fn prepare(&self, query: TransferQuery) -> TransferQuery {
        match &self.region {
            Some(r) => {
                // Keep the true polarity even if projection moved a_in
                // across zero (it cannot for per-polarity regions, but be
                // defensive).
                let projected = r.project(query.clamped());
                TransferQuery {
                    a_in: projected.a_in.abs() * query.a_in.signum(),
                    ..projected
                }
            }
            None => query.clamped(),
        }
    }

    fn predict(&self, query: TransferQuery) -> crate::transfer::TransferPrediction {
        self.transfer.predict(self.prepare(query))
    }

    /// Prepares a batch of raw queries **in place**: each is
    /// clamped/projected exactly as the scalar [`GateModel`] prediction
    /// does before inference. Idempotent, so re-preparing is harmless.
    pub fn prepare_batch(&self, queries: &mut [TransferQuery]) {
        for q in queries.iter_mut() {
            *q = self.prepare(*q);
        }
    }

    /// Predicts a batch of independent queries: each is clamped/projected
    /// in place (see [`GateModel::prepare_batch`] — the batch buffer is
    /// the scratch, so nothing is allocated per call), then the whole
    /// batch goes through [`TransferFunction::predict_batch`] in one
    /// call. `out` is overwritten with one prediction per query, in
    /// order, bit-identical to per-query [`TransferFunction::predict`]
    /// calls.
    pub fn predict_batch(
        &self,
        queries: &mut [TransferQuery],
        out: &mut Vec<crate::transfer::TransferPrediction>,
    ) {
        self.prepare_batch(queries);
        self.transfer.predict_batch(queries, out);
    }
}

/// Options of the prediction algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TomOptions {
    /// Supply voltage (sub-threshold check threshold is `vdd/2`).
    pub vdd: f64,
    /// Remove output transition pairs whose pulse never crosses `vdd/2`
    /// (Sec. III); disabling this is an ablation knob.
    pub cancel_subthreshold: bool,
}

impl Default for TomOptions {
    fn default() -> Self {
        Self {
            vdd: sigwave::VDD_DEFAULT,
            cancel_subthreshold: true,
        }
    }
}

/// Internal running state of Algorithm 1 (the `Prev` variable plus the
/// accumulated output list).
#[derive(Debug)]
struct OutputState {
    transitions: Vec<Sigmoid>,
    initial: Level,
    options: TomOptions,
}

impl OutputState {
    fn new(initial: Level, options: TomOptions) -> Self {
        Self {
            transitions: Vec::new(),
            initial,
            options,
        }
    }

    /// The `Prev` tuple: the last surviving output transition, or the
    /// dummy `(±s, −∞)` whose polarity matches the initial output level
    /// (line 1-2 of Algorithm 1).
    fn prev(&self) -> (f64, f64) {
        match self.transitions.last() {
            Some(s) => (s.a, s.b),
            None => {
                let a = if self.initial.is_high() {
                    DUMMY_SLOPE
                } else {
                    -DUMMY_SLOPE
                };
                (a, f64::NEG_INFINITY)
            }
        }
    }

    /// The polarity the *next* output transition must have.
    fn expected_rising(&self) -> bool {
        match self.transitions.last() {
            Some(s) => !s.is_rising(),
            None => !self.initial.is_high(),
        }
    }

    /// Appends a predicted transition, enforcing alternation/monotonicity
    /// and applying sub-threshold pulse removal.
    fn push(&mut self, a_out: f64, b_out: f64) {
        let expected = self.expected_rising();
        // Defensive polarity repair: the ANN predicts a signed slope; if
        // the sign came out wrong (far outside training data), coerce it.
        let a = if expected { a_out.abs() } else { -a_out.abs() };
        let a = if a == 0.0 {
            if expected {
                1e-3
            } else {
                -1e-3
            }
        } else {
            a
        };

        if let Some(last) = self.transitions.last().copied() {
            if b_out <= last.b {
                // Out-of-order schedule: the pulse collapsed entirely —
                // remove the previous transition and drop this one (the
                // cancellation rule of single-history models).
                self.transitions.pop();
                return;
            }
        }
        self.transitions.push(Sigmoid { a, b: b_out });

        if self.options.cancel_subthreshold {
            self.cancel_tail_pulses();
        }
    }

    /// Removes trailing transition pairs that form sub-threshold pulses
    /// ("removing two adjacent tuples that would form such a sub-threshold
    /// pulse", Sec. III).
    fn cancel_tail_pulses(&mut self) {
        while self.transitions.len() >= 2 {
            let s2 = self.transitions[self.transitions.len() - 1];
            let s1 = self.transitions[self.transitions.len() - 2];
            // Positive pulse (rising/falling pair) visible iff the pair
            // sum exceeds 1.5 (trace = vdd (sum - offset) crosses
            // vdd/2); negative pulse visible iff it drops below 0.5.
            let threshold = if s1.is_rising() { 1.5 } else { 0.5 };
            if s1.pair_crosses(&s2, threshold) {
                break;
            }
            self.transitions.pop();
            self.transitions.pop();
        }
    }

    fn into_trace(self, vdd: f64) -> SigmoidTrace {
        SigmoidTrace::from_transitions(self.initial, self.transitions, vdd)
            .expect("state maintains trace invariants")
    }
}

/// The boolean family of a simulated cell — everything [`plan_cell`]
/// needs to know about a gate: its truth function (for the initial output
/// level) and its non-controlling input value (for the Sec. III relevance
/// masking). The *polarity* of output transitions is not encoded here; it
/// comes from the transfer function's trained `a_out` sign plus the
/// output state's alternation repair, so one plan type serves inverting
/// (INV/NOR/NAND) and buffering (AND/OR) cells alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFunction {
    /// Inverter (single input).
    Inv,
    /// Buffer (single input).
    Buf,
    /// NOR: output high iff all inputs low; others masked unless low.
    Nor,
    /// OR: output high iff any input high; others masked unless low.
    Or,
    /// NAND: output low iff all inputs high; others masked unless high.
    Nand,
    /// AND: output high iff all inputs high; others masked unless high.
    And,
}

impl CellFunction {
    /// The level the *other* inputs must hold for a transition on one
    /// input to reach the output (the cell's non-controlling value):
    /// low for NOR/OR, high for NAND/AND.
    #[must_use]
    pub fn pass_level(self) -> Level {
        match self {
            CellFunction::Inv | CellFunction::Buf | CellFunction::Nor | CellFunction::Or => {
                Level::Low
            }
            CellFunction::Nand | CellFunction::And => Level::High,
        }
    }

    /// The cell's boolean function.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            CellFunction::Inv => !inputs[0],
            CellFunction::Buf => inputs[0],
            CellFunction::Nor => !inputs.iter().any(|&b| b),
            CellFunction::Or => inputs.iter().any(|&b| b),
            CellFunction::Nand => !inputs.iter().all(|&b| b),
            CellFunction::And => inputs.iter().all(|&b| b),
        }
    }

    /// `true` when, with every other input at the pass level, the output
    /// transition has the opposite polarity of the input transition.
    #[must_use]
    pub fn inverting(self) -> bool {
        matches!(
            self,
            CellFunction::Inv | CellFunction::Nor | CellFunction::Nand
        )
    }
}

/// A planned cell prediction: the model-independent half of Algorithm 1,
/// separated from the transfer-function evaluation so queries from many
/// gates can be batched together. (Historically named `NorPlan`; the same
/// plan now drives every library cell via [`plan_cell`].)
///
/// Planning resolves everything that does **not** depend on predictions:
/// the initial output level and the *relevant* input transitions (for a
/// multi-input cell, the transitions arriving while every other input
/// holds the cell's non-controlling level — the Sec. III decision
/// procedure, generalized from "others low" for NOR to "others high" for
/// NAND/AND). What remains is inherently sequential per gate — each
/// query's history interval and previous-output slope come from the
/// preceding prediction — so the plan is driven as a query/apply loop:
///
/// 1. [`GatePlan::next_query`] yields the query for the next relevant
///    transition (or `None` when the plan is exhausted),
/// 2. the caller evaluates it — alone, or batched with the pending queries
///    of *other* gates via [`GateModel::predict_batch`] —
/// 3. [`GatePlan::apply`] consumes the prediction, advancing Algorithm 1's
///    output state (alternation repair, out-of-order cancellation,
///    sub-threshold pulse removal),
/// 4. [`GatePlan::into_trace`] finalizes the output trace.
///
/// [`apply_plan`] packages the single-gate loop; the one-shot
/// [`predict_nor`]/[`predict_single_input`] wrappers are plan + apply and
/// remain bit-identical to driving the plan any other way.
#[derive(Debug)]
pub struct GatePlan<'a> {
    /// The relevant input transitions, in arrival order: borrowed straight
    /// from the input trace for single-input gates (no copy), owned only
    /// when a multi-input merge had to build the list.
    relevant: Cow<'a, [Sigmoid]>,
    /// Index of the next unconsumed transition in `relevant`.
    cursor: usize,
    state: OutputState,
}

/// The historical name of [`GatePlan`], kept so pre-library call sites
/// (and the paper-facing `plan_nor` vocabulary) keep compiling.
pub type NorPlan<'a> = GatePlan<'a>;

impl GatePlan<'_> {
    /// Number of relevant input transitions still awaiting a prediction.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.relevant.len() - self.cursor
    }

    /// The query for the next relevant input transition, or `None` when
    /// every transition has been applied. Stable until the next
    /// [`GatePlan::apply`] call.
    #[must_use]
    pub fn next_query(&self) -> Option<TransferQuery> {
        let sin = self.relevant.get(self.cursor)?;
        let (a_prev, b_prev) = self.state.prev();
        let t = if b_prev == f64::NEG_INFINITY {
            T_FAR
        } else {
            sin.b - b_prev
        };
        Some(TransferQuery {
            t,
            a_in: sin.a,
            a_prev_out: a_prev,
        })
    }

    /// Consumes the prediction for the query returned by
    /// [`GatePlan::next_query`]: schedules the output transition and runs
    /// the cancellation bookkeeping (Algorithm 1's loop body).
    ///
    /// # Panics
    ///
    /// Panics if the plan is already exhausted.
    pub fn apply(&mut self, prediction: crate::transfer::TransferPrediction) {
        let sin = self.relevant[self.cursor];
        self.cursor += 1;
        let b_out = sin.b + prediction.delay;
        self.state.push(prediction.a_out, b_out);
    }

    /// Finalizes the predicted output trace.
    ///
    /// # Panics
    ///
    /// Panics if relevant transitions are still pending — a finished trace
    /// with queries unconsumed would silently drop transitions.
    #[must_use]
    pub fn into_trace(self) -> SigmoidTrace {
        assert_eq!(
            self.cursor,
            self.relevant.len(),
            "plan finalized with {} transitions pending",
            self.relevant.len() - self.cursor
        );
        let vdd = self.state.options.vdd;
        self.state.into_trace(vdd)
    }
}

/// Plans Algorithm 1 for a single-input gate with a known settled output:
/// every input transition is relevant.
///
/// `initial_output` is the gate's settled output level before the first
/// input transition; for an inverter it is the inverse of the input's
/// initial level.
#[must_use]
pub fn plan_single_input(
    input: &SigmoidTrace,
    initial_output: Level,
    options: TomOptions,
) -> GatePlan<'_> {
    GatePlan {
        relevant: Cow::Borrowed(input.transitions()),
        cursor: 0,
        state: OutputState::new(initial_output, options),
    }
}

/// Plans a multi-input NOR prediction (Sec. III: "Algorithm 1 can be
/// performed with input I1 as the relevant one as long as input
/// I2 = GND"). Thin wrapper over [`plan_cell`] with
/// [`CellFunction::Nor`].
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[must_use]
pub fn plan_nor<'a>(inputs: &[&'a SigmoidTrace], options: TomOptions) -> GatePlan<'a> {
    plan_cell(CellFunction::Nor, inputs, options)
}

/// The circuit-dependent half of planning one cell: everything
/// [`plan_cell`] resolves that does **not** depend on the stimulus — the
/// cell function (driving the boolean initial-output evaluation), its
/// arity, and the precomputed masking/pass level the Sec. III relevance
/// decision compares against. A compile-once simulator builds one
/// template per gate when the circuit is compiled and then calls
/// [`PlanTemplate::bind`] per run, so the per-stimulus work is only the
/// transition merge itself — the masks and function checks are never
/// recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTemplate {
    function: CellFunction,
    arity: usize,
    /// `function.pass_level().is_high()`, resolved once at template
    /// construction.
    pass_high: bool,
}

impl PlanTemplate {
    /// Builds the template of a cell with the given function and arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero, or if a single-input function (INV/BUF)
    /// is given more than one input — the same contract [`plan_cell`]
    /// enforces per call.
    #[must_use]
    pub fn new(function: CellFunction, arity: usize) -> Self {
        assert!(arity > 0, "cell needs at least one input");
        if matches!(function, CellFunction::Inv | CellFunction::Buf) {
            assert_eq!(arity, 1, "{function:?} takes exactly one input");
        }
        Self {
            function,
            arity,
            pass_high: function.pass_level().is_high(),
        }
    }

    /// The cell function this template plans.
    #[must_use]
    pub fn function(&self) -> CellFunction {
        self.function
    }

    /// The input count the template was compiled for.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The stimulus-binding step: instantiates the per-run plan from this
    /// template. Bit-identical to [`plan_cell`] with the same function
    /// and inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the template's arity.
    #[must_use]
    pub fn bind<'a>(&self, inputs: &[&'a SigmoidTrace], options: TomOptions) -> GatePlan<'a> {
        self.bind_with(inputs, options, &mut PlanScratch::default())
    }

    /// Like [`PlanTemplate::bind`], reusing the caller's merge buffers so
    /// a hot loop binding many gates allocates nothing for the event
    /// merge (the relevant-transition list of a multi-input plan is still
    /// owned by the returned plan).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the template's arity.
    #[must_use]
    pub fn bind_with<'a>(
        &self,
        inputs: &[&'a SigmoidTrace],
        options: TomOptions,
        scratch: &mut PlanScratch,
    ) -> GatePlan<'a> {
        assert_eq!(
            inputs.len(),
            self.arity,
            "template compiled for arity {}, bound with {} inputs",
            self.arity,
            inputs.len()
        );
        if inputs.len() == 1 {
            let initial = Level::from_bool(self.function.eval(&[inputs[0].initial().is_high()]));
            return plan_single_input(inputs[0], initial, options);
        }
        // Merge transitions from all inputs, tagged with their source.
        let events = &mut scratch.events;
        events.clear();
        for (i, tr) in inputs.iter().enumerate() {
            for s in tr.transitions() {
                events.push((i, *s));
            }
        }
        events.sort_by(|a, b| a.1.b.total_cmp(&b.1.b));

        // Track digital levels of all inputs (by crossing time); relevance
        // depends only on the input traces, never on predictions.
        let levels = &mut scratch.levels;
        levels.clear();
        levels.extend(inputs.iter().map(|t| t.initial().is_high()));
        let initial_out = Level::from_bool(self.function.eval(levels));
        let mut relevant = Vec::new();
        for &(src, sin) in events.iter() {
            let others_pass = levels
                .iter()
                .enumerate()
                .all(|(i, &l)| i == src || l == self.pass_high);
            if others_pass {
                relevant.push(sin);
            }
            levels[src] = sin.is_rising();
        }
        GatePlan {
            relevant: Cow::Owned(relevant),
            cursor: 0,
            state: OutputState::new(initial_out, options),
        }
    }
}

/// Reusable buffers for [`PlanTemplate::bind_with`]'s multi-input event
/// merge. One instance serves any number of sequential binds; the buffers
/// grow to the largest merge seen and stay allocated.
#[derive(Debug, Default)]
pub struct PlanScratch {
    events: Vec<(usize, Sigmoid)>,
    levels: Vec<bool>,
}

/// Plans any library cell: merges the input transitions in time order and
/// keeps those arriving while every *other* input holds the cell's
/// non-controlling ("pass") level — low for NOR/OR, high for NAND/AND.
/// Transitions on a masked input never reach the output, so they produce
/// no query at all. The initial output level is the cell's boolean
/// function of the inputs' initial levels; output transition polarity is
/// left to the transfer model plus the plan's alternation repair, which
/// is what lets buffering cells share the machinery.
///
/// This is the fused form of [`PlanTemplate::new`] + [`PlanTemplate::bind`]
/// — per-call template construction for call sites that plan a gate once.
/// Compile-once simulators keep the template instead.
///
/// # Panics
///
/// Panics if `inputs` is empty, or if a single-input function (INV/BUF)
/// is given more than one input.
#[must_use]
pub fn plan_cell<'a>(
    function: CellFunction,
    inputs: &[&'a SigmoidTrace],
    options: TomOptions,
) -> GatePlan<'a> {
    assert!(!inputs.is_empty(), "cell needs at least one input");
    PlanTemplate::new(function, inputs.len()).bind(inputs, options)
}

/// Drives a plan to completion against one model: the scalar
/// query→predict→apply loop. (A level-scheduled simulator instead
/// interleaves the loops of many plans through
/// [`GateModel::predict_batch`]; both produce identical traces.)
#[must_use]
pub fn apply_plan(mut plan: GatePlan<'_>, model: &GateModel) -> SigmoidTrace {
    while let Some(query) = plan.next_query() {
        plan.apply(model.predict(query));
    }
    plan.into_trace()
}

/// The historical name of [`apply_plan`].
#[must_use]
pub fn apply_nor(plan: GatePlan<'_>, model: &GateModel) -> SigmoidTrace {
    apply_plan(plan, model)
}

/// Exact bit-level equality of two sigmoid traces: same initial level,
/// same `vdd` bit pattern, and the same transition list compared by the
/// `a`/`b` bit patterns. Stricter than `PartialEq`, which follows IEEE
/// float semantics (`-0.0 == 0.0`, `NaN != NaN`): this predicate is the
/// convergence cutoff of the incremental engine, where "unchanged" must
/// mean "a full re-execution would have produced these exact bytes" —
/// true bit-identity, not numeric closeness.
#[must_use]
pub fn traces_bit_identical(a: &SigmoidTrace, b: &SigmoidTrace) -> bool {
    a.initial() == b.initial()
        && a.vdd().to_bits() == b.vdd().to_bits()
        && a.transitions().len() == b.transitions().len()
        && a.transitions()
            .iter()
            .zip(b.transitions())
            .all(|(x, y)| x.a.to_bits() == y.a.to_bits() && x.b.to_bits() == y.b.to_bits())
}

/// Algorithm 1: predicts the output sigmoid trace of a single-input
/// inverting gate (inverter, or NOR with all other inputs low). Thin
/// wrapper over [`plan_single_input`] + [`apply_nor`].
///
/// `initial_output` is the gate's settled output level before the first
/// input transition; for an inverter it is the inverse of the input's
/// initial level.
#[must_use]
pub fn predict_single_input(
    model: &GateModel,
    input: &SigmoidTrace,
    initial_output: Level,
    options: TomOptions,
) -> SigmoidTrace {
    apply_nor(plan_single_input(input, initial_output, options), model)
}

/// Multi-input NOR prediction: one Algorithm-1 instance per input plus the
/// decision procedure selecting the currently relevant input. Thin wrapper
/// over [`plan_nor`] + [`apply_nor`].
///
/// A transition on input `i` is relevant iff every *other* input is low at
/// that moment (otherwise the NOR output is held low by the other input
/// and nothing happens at the output).
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[must_use]
pub fn predict_nor(
    model: &GateModel,
    inputs: &[&SigmoidTrace],
    options: TomOptions,
) -> SigmoidTrace {
    apply_nor(plan_nor(inputs, options), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::{TransferFunction, TransferPrediction};
    use sigwave::VDD_DEFAULT;

    /// A deterministic mock transfer: fixed delay, slope mirrors input
    /// with degradation for small T.
    struct MockTransfer {
        delay: f64,
    }

    impl TransferFunction for MockTransfer {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            let degradation = 1.0 - (-q.t / 0.2).exp();
            TransferPrediction {
                a_out: -q.a_in.signum() * 15.0 * degradation.max(0.05),
                delay: self.delay,
            }
        }
        fn backend_name(&self) -> &'static str {
            "mock"
        }
    }

    fn model(delay: f64) -> GateModel {
        GateModel::new(Arc::new(MockTransfer { delay }))
    }

    fn trace(transitions: Vec<Sigmoid>, initial: Level) -> SigmoidTrace {
        SigmoidTrace::from_transitions(initial, transitions, VDD_DEFAULT).unwrap()
    }

    #[test]
    fn single_transition_prediction() {
        let input = trace(vec![Sigmoid::rising(10.0, 1.0)], Level::Low);
        let out = predict_single_input(&model(0.06), &input, Level::High, TomOptions::default());
        assert_eq!(out.initial(), Level::High);
        assert_eq!(out.len(), 1);
        let s = out.transitions()[0];
        assert!(!s.is_rising());
        assert!((s.b - 1.06).abs() < 1e-12);
    }

    #[test]
    fn wide_pulse_passes_through() {
        let input = trace(
            vec![Sigmoid::rising(20.0, 1.0), Sigmoid::falling(20.0, 2.0)],
            Level::Low,
        );
        let out = predict_single_input(&model(0.05), &input, Level::High, TomOptions::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn subthreshold_pulse_is_cancelled() {
        // Input transitions 4 ps apart: T for the second is tiny, the mock
        // degrades the output slope to near zero -> the output pulse never
        // develops and must be removed.
        let input = trace(
            vec![Sigmoid::rising(20.0, 1.0), Sigmoid::falling(20.0, 1.04)],
            Level::Low,
        );
        let out = predict_single_input(&model(0.05), &input, Level::High, TomOptions::default());
        assert!(
            out.is_empty(),
            "degenerate pulse should cancel, got {:?}",
            out.transitions()
        );
        // Ablation: with cancellation off the transitions remain.
        let opts = TomOptions {
            cancel_subthreshold: false,
            ..TomOptions::default()
        };
        let out = predict_single_input(&model(0.05), &input, Level::High, opts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn out_of_order_schedule_cancels() {
        // Make the second event schedule before the first: huge delay for
        // the first input transition only.
        struct WeirdTransfer;
        impl TransferFunction for WeirdTransfer {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                let delay = if q.a_in > 0.0 { 0.5 } else { 0.01 };
                TransferPrediction {
                    a_out: -q.a_in.signum() * 10.0,
                    delay,
                }
            }
            fn backend_name(&self) -> &'static str {
                "weird"
            }
        }
        let m = GateModel::new(Arc::new(WeirdTransfer));
        let input = trace(
            vec![Sigmoid::rising(20.0, 1.0), Sigmoid::falling(20.0, 1.1)],
            Level::Low,
        );
        // First: out falls at 1.5; second: out would rise at 1.11 <= 1.5 ->
        // both cancel.
        let out = predict_single_input(&m, &input, Level::High, TomOptions::default());
        assert!(out.is_empty(), "got {:?}", out.transitions());
    }

    #[test]
    fn polarity_repair_keeps_alternation() {
        // A transfer that always predicts positive slopes: the state must
        // still produce an alternating, valid trace.
        struct BrokenSign;
        impl TransferFunction for BrokenSign {
            fn predict(&self, _q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: 42.0,
                    delay: 0.05,
                }
            }
            fn backend_name(&self) -> &'static str {
                "broken"
            }
        }
        let m = GateModel::new(Arc::new(BrokenSign));
        let input = trace(
            vec![Sigmoid::rising(20.0, 1.0), Sigmoid::falling(20.0, 2.0)],
            Level::Low,
        );
        let out = predict_single_input(&m, &input, Level::High, TomOptions::default());
        assert_eq!(out.len(), 2);
        assert!(!out.transitions()[0].is_rising());
        assert!(out.transitions()[1].is_rising());
    }

    #[test]
    fn nor_relevant_input_selection() {
        // I2 stays low: I1 transitions drive the output (inverted).
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 2.0)],
            Level::Low,
        );
        let i2 = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        let out = predict_nor(&model(0.05), &[&i1, &i2], TomOptions::default());
        assert_eq!(out.initial(), Level::High);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn nor_masked_input_is_ignored() {
        // I2 high the whole time: I1 transitions are irrelevant, output
        // stays low.
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 2.0)],
            Level::Low,
        );
        let i2 = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let out = predict_nor(&model(0.05), &[&i1, &i2], TomOptions::default());
        assert_eq!(out.initial(), Level::Low);
        assert!(out.is_empty());
    }

    #[test]
    fn nor_handover_between_inputs() {
        // I1 rises (output falls); then I2 rises while I1 high (masked);
        // I1 falls while I2 high (masked); I2 falls last with I1 low ->
        // output rises again.
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 3.0)],
            Level::Low,
        );
        let i2 = trace(
            vec![Sigmoid::rising(15.0, 2.0), Sigmoid::falling(15.0, 4.0)],
            Level::Low,
        );
        let out = predict_nor(&model(0.05), &[&i1, &i2], TomOptions::default());
        assert_eq!(out.initial(), Level::High);
        assert_eq!(out.len(), 2, "{:?}", out.transitions());
        assert!(!out.transitions()[0].is_rising());
        assert!((out.transitions()[0].b - 1.05).abs() < 1e-9);
        assert!((out.transitions()[1].b - 4.05).abs() < 1e-9);
    }

    #[test]
    fn nor3_only_relevant_when_both_others_low() {
        // Three inputs; I2 and I3 trade places being high: only windows
        // where BOTH are low let I1 drive the output.
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 5.0)],
            Level::Low,
        );
        let i2 = trace(
            vec![Sigmoid::rising(15.0, 2.0), Sigmoid::falling(15.0, 3.0)],
            Level::Low,
        );
        let i3 = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        let out = predict_nor(&model(0.05), &[&i1, &i2, &i3], TomOptions::default());
        // I1 rise at 1.0 -> out falls; I2 pulse 2..3 is masked by I1 high;
        // I1 fall at 5.0 -> out rises.
        assert_eq!(out.len(), 2, "{:?}", out.transitions());
        assert!((out.transitions()[0].b - 1.05).abs() < 1e-9);
        assert!((out.transitions()[1].b - 5.05).abs() < 1e-9);
    }

    #[test]
    fn nor_initial_level_from_inputs() {
        // Any input initially high -> output initially low.
        let hi = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let lo = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        let out = predict_nor(&model(0.05), &[&hi, &lo], TomOptions::default());
        assert_eq!(out.initial(), Level::Low);
        let out = predict_nor(&model(0.05), &[&lo, &lo], TomOptions::default());
        assert_eq!(out.initial(), Level::High);
    }

    /// A buffering mock: output slope mirrors the input polarity (what an
    /// AND/OR cell's trained transfer produces).
    struct BufferMock {
        delay: f64,
    }
    impl TransferFunction for BufferMock {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            TransferPrediction {
                a_out: q.a_in.signum() * 14.0,
                delay: self.delay,
            }
        }
        fn backend_name(&self) -> &'static str {
            "buffer-mock"
        }
    }

    #[test]
    fn nand_masks_while_other_input_low() {
        // NAND: transitions pass while the *other* input is high; a low
        // other input pins the output high and masks everything.
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 2.0)],
            Level::Low,
        );
        let hi = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let lo = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        let passed = apply_plan(
            plan_cell(CellFunction::Nand, &[&i1, &hi], TomOptions::default()),
            &model(0.05),
        );
        assert_eq!(passed.initial(), Level::High);
        assert_eq!(passed.len(), 2, "{:?}", passed.transitions());
        assert!(!passed.transitions()[0].is_rising());
        let masked = apply_plan(
            plan_cell(CellFunction::Nand, &[&i1, &lo], TomOptions::default()),
            &model(0.05),
        );
        assert_eq!(masked.initial(), Level::High);
        assert!(masked.is_empty(), "{:?}", masked.transitions());
    }

    #[test]
    fn and_passes_polarity_through() {
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 2.0)],
            Level::Low,
        );
        let hi = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let m = GateModel::new(Arc::new(BufferMock { delay: 0.07 }));
        let out = apply_plan(
            plan_cell(CellFunction::And, &[&i1, &hi], TomOptions::default()),
            &m,
        );
        assert_eq!(out.initial(), Level::Low);
        assert_eq!(out.len(), 2, "{:?}", out.transitions());
        assert!(out.transitions()[0].is_rising(), "AND buffers polarity");
        assert!((out.transitions()[0].b - 1.07).abs() < 1e-9);
        assert!((out.transitions()[1].b - 2.07).abs() < 1e-9);
    }

    #[test]
    fn or_handover_mirrors_nor() {
        // Same handover scenario as `nor_handover_between_inputs`, but the
        // OR output follows the relevant input instead of inverting it.
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 3.0)],
            Level::Low,
        );
        let i2 = trace(
            vec![Sigmoid::rising(15.0, 2.0), Sigmoid::falling(15.0, 4.0)],
            Level::Low,
        );
        let m = GateModel::new(Arc::new(BufferMock { delay: 0.05 }));
        let out = apply_plan(
            plan_cell(CellFunction::Or, &[&i1, &i2], TomOptions::default()),
            &m,
        );
        assert_eq!(out.initial(), Level::Low);
        assert_eq!(out.len(), 2, "{:?}", out.transitions());
        assert!(out.transitions()[0].is_rising());
        assert!((out.transitions()[0].b - 1.05).abs() < 1e-9);
        assert!(!out.transitions()[1].is_rising());
        assert!((out.transitions()[1].b - 4.05).abs() < 1e-9);
    }

    #[test]
    fn plan_cell_single_input_functions() {
        let input = trace(vec![Sigmoid::rising(12.0, 1.0)], Level::Low);
        let inv = plan_cell(CellFunction::Inv, &[&input], TomOptions::default());
        assert_eq!(inv.pending(), 1);
        let inv = apply_plan(inv, &model(0.05));
        assert_eq!(inv.initial(), Level::High);
        let m = GateModel::new(Arc::new(BufferMock { delay: 0.05 }));
        let buf = apply_plan(
            plan_cell(CellFunction::Buf, &[&input], TomOptions::default()),
            &m,
        );
        assert_eq!(buf.initial(), Level::Low);
        assert!(buf.transitions()[0].is_rising());
        // NOR with a single input degenerates to the inverter plan.
        let nor1 = apply_plan(
            plan_cell(CellFunction::Nor, &[&input], TomOptions::default()),
            &model(0.05),
        );
        assert_eq!(nor1, inv);
    }

    #[test]
    fn plan_nor_is_plan_cell_nor() {
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 2.2)],
            Level::Low,
        );
        let i2 = trace(vec![Sigmoid::rising(15.0, 1.8)], Level::Low);
        let opts = TomOptions::default();
        let a = apply_plan(plan_nor(&[&i1, &i2], opts), &model(0.05));
        let b = apply_plan(
            plan_cell(CellFunction::Nor, &[&i1, &i2], opts),
            &model(0.05),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn multi_input_inverter_rejected() {
        let i1 = trace(vec![Sigmoid::rising(15.0, 1.0)], Level::Low);
        let i2 = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        let _ = plan_cell(CellFunction::Inv, &[&i1, &i2], TomOptions::default());
    }

    #[test]
    fn plan_apply_matches_one_shot_prediction() {
        // Drive a plan manually (as the levelized simulator does) and
        // through apply_nor: both must equal the one-shot wrapper exactly.
        let m = model(0.07);
        let i1 = trace(
            vec![
                Sigmoid::rising(15.0, 1.0),
                Sigmoid::falling(15.0, 1.04), // sub-threshold pulse: cancels
                Sigmoid::rising(15.0, 3.0),
                Sigmoid::falling(15.0, 5.0),
            ],
            Level::Low,
        );
        let i2 = trace(
            vec![Sigmoid::rising(15.0, 3.5), Sigmoid::falling(15.0, 4.0)],
            Level::Low,
        );
        let opts = TomOptions::default();
        let one_shot = predict_nor(&m, &[&i1, &i2], opts);

        let mut plan = plan_nor(&[&i1, &i2], opts);
        let mut queries_seen = 0;
        let mut batch = Vec::new();
        while let Some(q) = plan.next_query() {
            // Route through the batch entry point one query at a time.
            let mut one = [q];
            m.predict_batch(&mut one, &mut batch);
            plan.apply(batch[0]);
            queries_seen += 1;
        }
        assert!(queries_seen >= 2, "multi-transition plan expected");
        assert_eq!(plan.pending(), 0);
        assert_eq!(plan.into_trace(), one_shot);

        let via_apply = apply_nor(plan_nor(&[&i1, &i2], opts), &m);
        assert_eq!(via_apply, one_shot);
    }

    #[test]
    fn plan_masks_irrelevant_transitions() {
        // I2 high the whole time: no transition is relevant, no query is
        // ever emitted, and the trace settles low.
        let i1 = trace(
            vec![Sigmoid::rising(15.0, 1.0), Sigmoid::falling(15.0, 2.0)],
            Level::Low,
        );
        let i2 = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let plan = plan_nor(&[&i1, &i2], TomOptions::default());
        assert_eq!(plan.pending(), 0);
        assert!(plan.next_query().is_none());
        let out = plan.into_trace();
        assert_eq!(out.initial(), Level::Low);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "transitions pending")]
    fn unfinished_plan_cannot_finalize() {
        let input = trace(vec![Sigmoid::rising(15.0, 1.0)], Level::Low);
        let plan = plan_single_input(&input, Level::High, TomOptions::default());
        let _ = plan.into_trace();
    }

    #[test]
    fn gate_model_predict_batch_applies_region() {
        use crate::region::ValidRegion;
        use sigchar::TransferSample;
        let mut samples = Vec::new();
        for i in 0..30 {
            let t = 0.2 + 0.1 * f64::from(i);
            for s in [1.0, -1.0] {
                samples.push(TransferSample {
                    t,
                    a_in: s * (8.0 + 0.2 * f64::from(i)),
                    a_prev_out: -s * 10.0,
                    a_out: -s * 12.0,
                    delay: 0.05,
                });
            }
        }
        let region = Arc::new(ValidRegion::from_samples(&samples, 2.0));
        let m = GateModel::new(Arc::new(MockTransfer { delay: 0.05 })).with_region(region);
        // Far outside the trained slopes: projection must kick in, and the
        // batch path must match the scalar path bit for bit.
        let queries = [
            TransferQuery {
                t: 0.5,
                a_in: 500.0,
                a_prev_out: -9.0,
            },
            TransferQuery {
                t: 2.0,
                a_in: -0.01,
                a_prev_out: 9.0,
            },
        ];
        let mut prepared = queries;
        let mut out = Vec::new();
        m.predict_batch(&mut prepared, &mut out);
        for (q, p) in queries.iter().zip(&out) {
            assert_eq!(*p, m.predict(*q));
        }
    }

    #[test]
    fn template_bind_matches_plan_cell() {
        // The compile/execute split of planning must be bit-identical to
        // the fused form for every cell function, including reused-scratch
        // binds across gates of different shapes.
        let i1 = trace(
            vec![
                Sigmoid::rising(15.0, 1.0),
                Sigmoid::falling(15.0, 1.04),
                Sigmoid::rising(15.0, 3.0),
            ],
            Level::Low,
        );
        let i2 = trace(
            vec![Sigmoid::rising(15.0, 2.0), Sigmoid::falling(15.0, 4.0)],
            Level::Low,
        );
        let hi = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let opts = TomOptions::default();
        let m = model(0.06);
        let buf = GateModel::new(Arc::new(BufferMock { delay: 0.06 }));
        let mut scratch = PlanScratch::default();
        let cases: Vec<(CellFunction, Vec<&SigmoidTrace>)> = vec![
            (CellFunction::Inv, vec![&i1]),
            (CellFunction::Buf, vec![&i1]),
            (CellFunction::Nor, vec![&i1, &i2]),
            (CellFunction::Nand, vec![&i1, &hi]),
            (CellFunction::And, vec![&i1, &hi]),
            (CellFunction::Or, vec![&i1, &i2]),
            (CellFunction::Nor, vec![&i1, &i2, &hi]),
        ];
        for (function, inputs) in cases {
            let template = PlanTemplate::new(function, inputs.len());
            assert_eq!(template.function(), function);
            assert_eq!(template.arity(), inputs.len());
            let use_buffer = matches!(
                function,
                CellFunction::Buf | CellFunction::And | CellFunction::Or
            );
            let chosen = if use_buffer { &buf } else { &m };
            let fused = apply_plan(plan_cell(function, &inputs, opts), chosen);
            let bound = apply_plan(template.bind(&inputs, opts), chosen);
            let reused = apply_plan(template.bind_with(&inputs, opts, &mut scratch), chosen);
            assert_eq!(fused, bound, "{function:?}: bind differs from plan_cell");
            assert_eq!(fused, reused, "{function:?}: bind_with differs");
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn template_rejects_arity_mismatch() {
        let input = trace(vec![Sigmoid::rising(15.0, 1.0)], Level::Low);
        let template = PlanTemplate::new(CellFunction::Nor, 2);
        let _ = template.bind(&[&input], TomOptions::default());
    }

    #[test]
    fn trace_bit_identity_is_stricter_than_partial_eq() {
        let base = trace(
            vec![Sigmoid::rising(12.0, 1.0), Sigmoid::falling(10.0, 2.0)],
            Level::Low,
        );
        assert!(traces_bit_identical(&base, &base.clone()));
        // Different slope, different time, different length, different
        // initial level, different vdd: all distinguishable.
        let other = trace(
            vec![Sigmoid::rising(12.5, 1.0), Sigmoid::falling(10.0, 2.0)],
            Level::Low,
        );
        assert!(!traces_bit_identical(&base, &other));
        let shorter = trace(vec![Sigmoid::rising(12.0, 1.0)], Level::Low);
        assert!(!traces_bit_identical(&base, &shorter));
        assert!(!traces_bit_identical(
            &SigmoidTrace::constant(Level::Low, VDD_DEFAULT),
            &SigmoidTrace::constant(Level::High, VDD_DEFAULT)
        ));
        assert!(!traces_bit_identical(
            &SigmoidTrace::constant(Level::Low, VDD_DEFAULT),
            &SigmoidTrace::constant(Level::Low, 1.0)
        ));
        // −0.0 == 0.0 under IEEE comparison, but the bit patterns differ:
        // bit-identity must see through PartialEq here.
        let at_zero = trace(vec![Sigmoid::rising(12.0, 0.0)], Level::Low);
        let at_neg_zero = trace(vec![Sigmoid::rising(12.0, -0.0)], Level::Low);
        assert_eq!(at_zero, at_neg_zero, "IEEE equality treats ±0.0 as equal");
        assert!(!traces_bit_identical(&at_zero, &at_neg_zero));
    }

    #[test]
    fn empty_input_empty_output() {
        let input = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        let out = predict_single_input(&model(0.05), &input, Level::High, TomOptions::default());
        assert!(out.is_empty());
        assert_eq!(out.initial(), Level::High);
    }
}
