//! The ANN transfer-function backend (Sec. IV): four MLPs per gate input —
//! `{rising, falling} × {output slope, output delay}` — each using the
//! paper's `3 → 10 → 10 → 5 → 1` ReLU architecture.

use serde::{Deserialize, Serialize};
use signn::{train_with_validation, Mlp, ScaledModel, Standardizer, TrainConfig};

use sigchar::Dataset;

use crate::transfer::{TransferFunction, TransferPrediction, TransferQuery};

/// Training configuration for one [`AnnTransfer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnTrainConfig {
    /// Epochs per network.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed for initialization and shuffling.
    pub seed: u64,
    /// Early-stopping patience (0 = off).
    pub patience: usize,
    /// Fraction of the data used for training (rest validates).
    pub train_fraction: f64,
    /// Worker threads for the four per-gate networks (`0` = auto-detect,
    /// `1` = sequential). Each network trains from its own seeded RNG, so
    /// results are identical at any setting.
    pub parallelism: usize,
}

impl Default for AnnTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 1500,
            batch_size: 32,
            learning_rate: 4e-3,
            seed: 0x5160,
            patience: 200,
            train_fraction: 0.85,
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }
}

impl AnnTrainConfig {
    /// A fast configuration for tests/CI.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            epochs: 350,
            patience: 0,
            ..Self::default()
        }
    }
}

/// Error training a transfer function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainTransferError {
    /// A polarity half of the dataset is empty.
    EmptyPolarity {
        /// `"rising"` or `"falling"`.
        which: &'static str,
    },
}

impl std::fmt::Display for TrainTransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyPolarity { which } => {
                write!(f, "dataset has no {which} samples to train on")
            }
        }
    }
}

impl std::error::Error for TrainTransferError {}

/// One trained scalar network (features → slope or delay).
fn train_scalar(
    samples: &[sigchar::TransferSample],
    target: impl Fn(&sigchar::TransferSample) -> f64,
    config: &AnnTrainConfig,
    seed_offset: u64,
) -> ScaledModel {
    let raw_x: Vec<Vec<f64>> = samples.iter().map(|s| s.features().to_vec()).collect();
    let raw_y: Vec<Vec<f64>> = samples.iter().map(|s| vec![target(s)]).collect();
    let in_scaler = Standardizer::fit(&raw_x);
    let out_scaler = Standardizer::fit(&raw_y);
    let xs: Vec<Vec<f64>> = raw_x.iter().map(|r| in_scaler.transform(r)).collect();
    let ys: Vec<Vec<f64>> = raw_y.iter().map(|r| out_scaler.transform(r)).collect();
    // Deterministic interleaved split.
    let k = ((1.0 / (1.0 - config.train_fraction)).round() as usize).max(2);
    let mut tx = Vec::new();
    let mut ty = Vec::new();
    let mut vx = Vec::new();
    let mut vy = Vec::new();
    for (i, (x, y)) in xs.into_iter().zip(ys).enumerate() {
        if i % k == k - 1 {
            vx.push(x);
            vy.push(y);
        } else {
            tx.push(x);
            ty.push(y);
        }
    }
    if tx.is_empty() {
        std::mem::swap(&mut tx, &mut vx);
        std::mem::swap(&mut ty, &mut vy);
    }
    let mut mlp = Mlp::paper_architecture(3, config.seed ^ seed_offset);
    let train_cfg = TrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        learning_rate: config.learning_rate,
        seed: config.seed ^ seed_offset,
        patience: config.patience,
    };
    let _ = train_with_validation(&mut mlp, &tx, &ty, &vx, &vy, &train_cfg);
    ScaledModel::new(mlp, in_scaler, out_scaler)
}

/// The paper's transfer-function implementation: four MLPs covering
/// `{F↑, F↓} × {slope, delay}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnTransfer {
    rise_slope: ScaledModel,
    rise_delay: ScaledModel,
    fall_slope: ScaledModel,
    fall_delay: ScaledModel,
}

impl AnnTransfer {
    /// Assembles a transfer function from four already-built networks
    /// (`{rising, falling} × {slope, delay}`) — for loading individually
    /// trained artifacts or building synthetic backends in benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if any network does not map 3 features to 1 output.
    #[must_use]
    pub fn from_parts(
        rise_slope: ScaledModel,
        rise_delay: ScaledModel,
        fall_slope: ScaledModel,
        fall_delay: ScaledModel,
    ) -> Self {
        for net in [&rise_slope, &rise_delay, &fall_slope, &fall_delay] {
            assert_eq!(net.mlp.input_size(), 3, "transfer nets take 3 features");
            assert_eq!(net.mlp.output_size(), 1, "transfer nets are scalar");
        }
        Self {
            rise_slope,
            rise_delay,
            fall_slope,
            fall_delay,
        }
    }

    /// Trains the four networks from a characterization dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainTransferError`] if either polarity has no samples.
    pub fn train(dataset: &Dataset, config: &AnnTrainConfig) -> Result<Self, TrainTransferError> {
        if dataset.rising.is_empty() {
            return Err(TrainTransferError::EmptyPolarity { which: "rising" });
        }
        if dataset.falling.is_empty() {
            return Err(TrainTransferError::EmptyPolarity { which: "falling" });
        }
        // The four `{polarity} × {slope, delay}` networks are independent
        // (each derives its RNG from `seed ^ offset`), so train them on the
        // worker pool; results match the sequential path bit-for-bit.
        type Target = fn(&sigchar::TransferSample) -> f64;
        let jobs: [(&[sigchar::TransferSample], Target, u64); 4] = [
            (&dataset.rising, |s| s.a_out, 0x01),
            (&dataset.rising, |s| s.delay, 0x02),
            (&dataset.falling, |s| s.a_out, 0x03),
            (&dataset.falling, |s| s.delay, 0x04),
        ];
        let mut nets = sigwave::parallel::par_map(
            config.parallelism,
            &jobs,
            |_, &(samples, target, offset)| train_scalar(samples, target, config, offset),
        )
        .into_iter();
        Ok(Self {
            rise_slope: nets.next().expect("four networks"),
            rise_delay: nets.next().expect("four networks"),
            fall_slope: nets.next().expect("four networks"),
            fall_delay: nets.next().expect("four networks"),
        })
    }

    /// Serializes to JSON (the trained-model artifact).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads from JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl TransferFunction for AnnTransfer {
    fn predict(&self, query: TransferQuery) -> TransferPrediction {
        let q = query.clamped();
        let x = q.features();
        let (slope_net, delay_net) = if q.a_in > 0.0 {
            (&self.rise_slope, &self.rise_delay)
        } else {
            (&self.fall_slope, &self.fall_delay)
        };
        TransferPrediction {
            a_out: slope_net.predict(&x)[0],
            delay: delay_net.predict(&x)[0],
        }
    }

    /// Batched inference: the queries are split by polarity (the same
    /// `a_in > 0` routing as the scalar path), each half runs through its
    /// slope/delay networks as one row-major matrix per layer
    /// ([`signn::Mlp::forward_batch`]), and the results are scattered back
    /// into query order. Bit-identical to the scalar loop per query.
    fn predict_batch(&self, queries: &[TransferQuery], out: &mut Vec<TransferPrediction>) {
        out.clear();
        if queries.is_empty() {
            return;
        }
        out.resize(
            queries.len(),
            TransferPrediction {
                a_out: 0.0,
                delay: 0.0,
            },
        );
        // [falling, rising] halves: original index + packed feature rows.
        let mut idx: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut rows: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for (i, q) in queries.iter().enumerate() {
            let q = q.clamped();
            let p = usize::from(q.a_in > 0.0);
            idx[p].push(i);
            rows[p].extend_from_slice(&q.features());
        }
        let nets = [
            (&self.fall_slope, &self.fall_delay),
            (&self.rise_slope, &self.rise_delay),
        ];
        let mut slopes = Vec::new();
        let mut delays = Vec::new();
        for (p, (slope_net, delay_net)) in nets.into_iter().enumerate() {
            let n = idx[p].len();
            if n == 0 {
                continue;
            }
            slope_net.predict_batch(&rows[p], n, &mut slopes);
            delay_net.predict_batch(&rows[p], n, &mut delays);
            for (j, &i) in idx[p].iter().enumerate() {
                out[i] = TransferPrediction {
                    a_out: slopes[j],
                    delay: delays[j],
                };
            }
        }
    }

    fn backend_name(&self) -> &'static str {
        "ann"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigchar::{Dataset, GateTag, TransferSample, T_FAR};

    /// A synthetic dataset following a known smooth transfer law, so the
    /// ANN's approximation quality can be verified exactly.
    pub(crate) fn synthetic_dataset(n: usize) -> Dataset {
        // Continuous coverage of (T, a_in), like real characterization data
        // where slopes vary smoothly across the sweep.
        let mut d = Dataset::new(GateTag::NorFo1);
        for i in 0..n {
            let t = 0.05 + (i as f64 / n as f64) * (T_FAR - 0.05);
            for j in 0..8 {
                let mag = 6.0 + 3.0 * j as f64 + 1.3 * (i % 3) as f64;
                for &a_in in &[mag, -mag] {
                    let a_prev = if a_in > 0.0 { 10.0 } else { -10.0 };
                    d.push(law(t, a_in, a_prev));
                }
            }
        }
        d
    }

    /// The synthetic "ground truth" transfer law: delay decays with T,
    /// output slope grows with |a_in| and degrades for small T.
    pub(crate) fn law(t: f64, a_in: f64, a_prev_out: f64) -> TransferSample {
        let degradation = 1.0 - (-t / 0.3).exp();
        let delay = 0.05 + 0.02 * (-t / 0.5).exp() + 0.2 / a_in.abs();
        let a_out_mag = (8.0 + 0.5 * a_in.abs()) * degradation;
        TransferSample {
            t,
            a_in,
            a_prev_out,
            a_out: if a_in > 0.0 { -a_out_mag } else { a_out_mag },
            delay,
        }
    }

    #[test]
    fn learns_synthetic_law() {
        let data = synthetic_dataset(60);
        let ann = AnnTransfer::train(&data, &AnnTrainConfig::fast()).unwrap();
        // Probe interior points not exactly on the training grid.
        let mut worst_delay = 0.0f64;
        let mut worst_slope = 0.0f64;
        for &t in &[0.2, 0.7, 1.3, 2.2] {
            for &a_in in &[8.0, -18.0] {
                let a_prev = if a_in > 0.0 { 10.0 } else { -10.0 };
                let truth = law(t, a_in, a_prev);
                let p = ann.predict(TransferQuery {
                    t,
                    a_in,
                    a_prev_out: a_prev,
                });
                worst_delay = worst_delay.max((p.delay - truth.delay).abs());
                worst_slope = worst_slope.max((p.a_out - truth.a_out).abs() / truth.a_out.abs());
            }
        }
        assert!(worst_delay < 0.02, "delay error {worst_delay} (2 ps)");
        assert!(worst_slope < 0.15, "relative slope error {worst_slope}");
    }

    #[test]
    fn polarity_routing() {
        let data = synthetic_dataset(30);
        let ann = AnnTransfer::train(&data, &AnnTrainConfig::fast()).unwrap();
        let up = ann.predict(TransferQuery {
            t: 1.0,
            a_in: 10.0,
            a_prev_out: 10.0,
        });
        let down = ann.predict(TransferQuery {
            t: 1.0,
            a_in: -10.0,
            a_prev_out: -10.0,
        });
        // Inverting gate: rising input -> falling output and vice versa.
        assert!(up.a_out < 0.0, "{up:?}");
        assert!(down.a_out > 0.0, "{down:?}");
    }

    #[test]
    fn parallel_training_matches_sequential() {
        let data = synthetic_dataset(12);
        let seq = AnnTransfer::train(
            &data,
            &AnnTrainConfig {
                parallelism: 1,
                epochs: 80,
                ..AnnTrainConfig::fast()
            },
        )
        .unwrap();
        let par = AnnTransfer::train(
            &data,
            &AnnTrainConfig {
                parallelism: 4,
                epochs: 80,
                ..AnnTrainConfig::fast()
            },
        )
        .unwrap();
        // Each network derives its RNG from `seed ^ offset`, so the fanned
        // out training must be bit-identical to the sequential path.
        assert_eq!(seq, par);
    }

    #[test]
    fn predict_batch_bit_identical_to_scalar() {
        let data = synthetic_dataset(20);
        let ann = AnnTransfer::train(&data, &AnnTrainConfig::fast()).unwrap();
        // Mixed polarities, out-of-domain T (exercises clamping), and a
        // batch of one.
        let queries: Vec<TransferQuery> = [
            (0.3, 9.0, -11.0),
            (1.7, -14.0, 12.0),
            (50.0, 7.5, -8.0),
            (0.9, -6.0, 9.0),
            (2.4, 16.0, -15.0),
        ]
        .iter()
        .map(|&(t, a_in, a_prev_out)| TransferQuery {
            t,
            a_in,
            a_prev_out,
        })
        .collect();
        let mut out = Vec::new();
        ann.predict_batch(&queries, &mut out);
        assert_eq!(out.len(), queries.len());
        for (q, p) in queries.iter().zip(&out) {
            assert_eq!(*p, ann.predict(*q), "query {q:?}");
        }
        ann.predict_batch(&queries[..1], &mut out);
        assert_eq!(out, vec![ann.predict(queries[0])]);
        ann.predict_batch(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn from_parts_round_trips_trained_networks() {
        let data = synthetic_dataset(10);
        let ann = AnnTransfer::train(&data, &AnnTrainConfig::fast()).unwrap();
        let rebuilt = AnnTransfer::from_parts(
            ann.rise_slope.clone(),
            ann.rise_delay.clone(),
            ann.fall_slope.clone(),
            ann.fall_delay.clone(),
        );
        assert_eq!(ann, rebuilt);
    }

    #[test]
    fn empty_polarity_rejected() {
        let mut d = Dataset::new(GateTag::Inverter);
        d.push(law(1.0, 5.0, 10.0));
        let err = AnnTransfer::train(&d, &AnnTrainConfig::fast()).unwrap_err();
        assert_eq!(err, TrainTransferError::EmptyPolarity { which: "falling" });
    }

    #[test]
    fn serde_round_trip() {
        let data = synthetic_dataset(10);
        let ann = AnnTransfer::train(&data, &AnnTrainConfig::fast()).unwrap();
        let json = ann.to_json().unwrap();
        let back = AnnTransfer::from_json(&json).unwrap();
        let q = TransferQuery {
            t: 0.5,
            a_in: 9.0,
            a_prev_out: 11.0,
        };
        assert_eq!(ann.predict(q), back.predict(q));
        assert_eq!(ann.backend_name(), "ann");
    }

    #[test]
    fn far_history_plateau() {
        // Queries beyond T_FAR must behave like T_FAR (clamping).
        let data = synthetic_dataset(30);
        let ann = AnnTransfer::train(&data, &AnnTrainConfig::fast()).unwrap();
        let at_far = ann.predict(TransferQuery {
            t: T_FAR,
            a_in: 10.0,
            a_prev_out: 10.0,
        });
        let beyond = ann.predict(TransferQuery {
            t: 50.0,
            a_in: 10.0,
            a_prev_out: 10.0,
        });
        assert_eq!(at_far, beyond);
    }
}
