//! The end-to-end training pipeline: characterize → train ANNs → build
//! valid regions → assemble runtime models, with JSON caching of the
//! trained artifacts (the paper's "trained ANNs stored with the prototype"
//! flow).
//!
//! Two artifact shapes exist:
//!
//! * [`TrainedModels`] — the paper's fixed four-variant bundle (inverter
//!   and NOR at fan-out 1/2), assembled by [`train_models`].
//! * [`CellLibrary`] — a named, extensible collection of per-[`GateTag`]
//!   [`StoredModel`]s, trained from a [`LibrarySpec`] by
//!   [`train_cell_library`]; its [`CellLibrary::cell_models`] runtime form
//!   drives the simulator directly on native (un-NOR-mapped) netlists.
//!   See `docs/cell-libraries.md` for the characterize → train →
//!   serialize → select workflow.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sigchar::{characterize, CharError, CharacterizationConfig, Dataset, GateTag};
use sigcircuit::GateKind;
use sigtom::{AnnTrainConfig, AnnTransfer, GateModel, TrainTransferError, ValidRegion};

use crate::simulator::{CellModels, GateModels};

/// Configuration of the full pipeline.
///
/// # Example
///
/// ```no_run
/// use sigsim::{train_cell_library, LibrarySpec, PipelineConfig};
/// // CI scale (~seconds); `PipelineConfig::default()` is the real sweep.
/// let config = PipelineConfig::ci().with_parallelism(0);
/// let library = train_cell_library(&LibrarySpec::native(), &config)?;
/// assert_eq!(library.tags().len(), 10);
/// # Ok::<(), sigsim::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Characterization campaign settings (sweep, chains, engine).
    pub characterization: CharacterizationConfig,
    /// ANN training settings.
    pub training: AnnTrainConfig,
    /// Valid-region margin; `None` disables region containment (ablation).
    pub region_margin: Option<f64>,
    /// Worker threads for the four gate variants (`0` = auto-detect, `1` =
    /// sequential). Nested stages (sweep, per-network training) have their
    /// own knobs; [`PipelineConfig::with_parallelism`] sets all three.
    pub parallelism: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 5e-12,
                    max: 20e-12,
                    step: 2.5e-12, // 7 values -> 343 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 4,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig::default(),
            region_margin: Some(4.0),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }
}

impl PipelineConfig {
    /// A fast, CI-scale pipeline (coarser sweep, shorter training).
    #[must_use]
    pub fn fast() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 6e-12,
                    max: 20e-12,
                    step: 7e-12, // 3 values -> 27 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 3,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 400,
                patience: 60,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }

    /// A minimal smoke-test pipeline (coarsest sweep, very short
    /// training): trains in about a second, giving CI jobs and service
    /// tests real (if rough) models with deterministic weights. Accuracy
    /// is NOT representative — use [`PipelineConfig::fast`] or the default
    /// for anything quantitative.
    #[must_use]
    pub fn ci() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 10e-12,
                    max: 20e-12,
                    step: 5e-12, // 3 values -> 27 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 3,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 250,
                patience: 0,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }

    /// Sets every parallelism knob in the pipeline — the variant fan-out
    /// plus the nested characterization-sweep and per-network-training
    /// pools (`0` = auto-detect, `1` = fully sequential).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self.characterization.parallelism = parallelism;
        self.training.parallelism = parallelism;
        self
    }
}

/// Error from the training pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Characterization failed.
    Characterization(CharError),
    /// Training failed.
    Training(TrainTransferError),
    /// Cache I/O failed.
    Io(std::io::Error),
    /// Cache (de)serialization failed.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Characterization(e) => write!(f, "characterization failed: {e}"),
            Self::Training(e) => write!(f, "training failed: {e}"),
            Self::Io(e) => write!(f, "model cache I/O failed: {e}"),
            Self::Serde(e) => write!(f, "model cache corrupt: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Characterization(e) => Some(e),
            Self::Training(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::Serde(e) => Some(e),
        }
    }
}

impl From<CharError> for PipelineError {
    fn from(e: CharError) -> Self {
        Self::Characterization(e)
    }
}

impl From<TrainTransferError> for PipelineError {
    fn from(e: TrainTransferError) -> Self {
        Self::Training(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for PipelineError {
    fn from(e: serde_json::Error) -> Self {
        Self::Serde(e)
    }
}

/// One trained cell variant in serializable form: the four transfer ANNs
/// plus (optionally) the valid region built from its characterization
/// dataset.
///
/// The ANN and region are held behind `Arc` so the runtime model
/// assemblies ([`TrainedModels::gate_models`],
/// [`CellLibrary::cell_models`]) share the trained weights instead of
/// deep-cloning them — the `sigserve` model registry hands the same
/// allocations to every request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredModel {
    ann: Arc<AnnTransfer>,
    region: Option<Arc<ValidRegion>>,
}

impl StoredModel {
    /// The runtime [`GateModel`]: shared ANN weights, region attached when
    /// one was built.
    #[must_use]
    pub fn to_gate_model(&self) -> GateModel {
        let mut m = GateModel::new(Arc::clone(&self.ann) as _);
        if let Some(r) = &self.region {
            m = m.with_region(Arc::clone(r));
        }
        m
    }
}

/// The trained artifact bundle: gate models plus the datasets they were
/// trained on (kept for valid-region ablations and benchmarks).
///
/// Invariant: the JSON form round-trips exactly (serialize →
/// deserialize → serialize is byte-identical), and
/// [`TrainedModels::gate_models`] shares the stored weight allocations
/// (`Arc`) rather than cloning them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModels {
    inverter: StoredModel,
    inverter_fo2: StoredModel,
    nor_fo1: StoredModel,
    nor_fo2: StoredModel,
    /// The characterization datasets by gate variant.
    pub datasets: HashMap<String, Dataset>,
}

impl TrainedModels {
    /// Assembles the runtime gate models.
    #[must_use]
    pub fn gate_models(&self) -> GateModels {
        GateModels {
            inverter: self.inverter.to_gate_model(),
            inverter_fo2: self.inverter_fo2.to_gate_model(),
            nor_fo1: self.nor_fo1.to_gate_model(),
            nor_fo2: self.nor_fo2.to_gate_model(),
        }
    }

    /// The dataset of one gate variant.
    #[must_use]
    pub fn dataset(&self, tag: GateTag) -> Option<&Dataset> {
        self.datasets.get(&tag.to_string())
    }
}

fn train_one(
    tag: GateTag,
    config: &PipelineConfig,
) -> Result<(StoredModel, Dataset), PipelineError> {
    let outcome = characterize(tag, &config.characterization)?;
    let ann = Arc::new(AnnTransfer::train(&outcome.dataset, &config.training)?);
    let region = config.region_margin.map(|margin| {
        let pts: Vec<[f64; 3]> = outcome
            .dataset
            .rising
            .iter()
            .chain(&outcome.dataset.falling)
            .map(|s| s.features())
            .collect();
        Arc::new(ValidRegion::build(&pts, margin))
    });
    Ok((StoredModel { ann, region }, outcome.dataset))
}

/// Runs the full pipeline: characterize and train all four gate variants
/// (inverter at fan-out 1/2, NOR at fan-out 1/2).
///
/// # Errors
///
/// Returns [`PipelineError`] on characterization or training failure.
pub fn train_models(config: &PipelineConfig) -> Result<TrainedModels, PipelineError> {
    // The four gate variants are independent end-to-end (characterization
    // chain, dataset, networks), so fan them out across the worker pool.
    let tags = [
        GateTag::Inverter,
        GateTag::InverterFo2,
        GateTag::NorFo1,
        GateTag::NorFo2,
    ];
    // The nested stages (sweep, per-network training) have their own
    // pools; divide the budget instead of multiplying it, so e.g. a
    // 16-core default runs 4 variant workers × 4 sweep workers rather
    // than 4 × 16 oversubscribed threads. Results are unaffected —
    // parallelism never changes outputs.
    use sigwave::parallel::resolve_parallelism;
    let outer = resolve_parallelism(config.parallelism).clamp(1, tags.len());
    let mut inner = config.clone();
    inner.characterization.parallelism =
        (resolve_parallelism(config.characterization.parallelism) / outer).max(1);
    inner.training.parallelism = (resolve_parallelism(config.training.parallelism) / outer).max(1);
    let mut trained = sigwave::parallel::try_par_map(config.parallelism, &tags, |_, &tag| {
        train_one(tag, &inner)
    })?
    .into_iter();
    let mut next = || trained.next().expect("four variants");
    let (inverter, d_inv) = next();
    let (inverter_fo2, d_inv2) = next();
    let (nor_fo1, d_fo1) = next();
    let (nor_fo2, d_fo2) = next();
    let mut datasets = HashMap::new();
    datasets.insert(GateTag::Inverter.to_string(), d_inv);
    datasets.insert(GateTag::InverterFo2.to_string(), d_inv2);
    datasets.insert(GateTag::NorFo1.to_string(), d_fo1);
    datasets.insert(GateTag::NorFo2.to_string(), d_fo2);
    Ok(TrainedModels {
        inverter,
        inverter_fo2,
        nor_fo1,
        nor_fo2,
        datasets,
    })
}

/// Like [`train_models`] but cached: loads the JSON artifact at `path` if
/// present, otherwise trains and writes it.
///
/// # Errors
///
/// Returns [`PipelineError`] on pipeline or I/O failure. A corrupt cache is
/// retrained, not an error.
pub fn train_models_cached(
    path: &Path,
    config: &PipelineConfig,
) -> Result<TrainedModels, PipelineError> {
    if path.exists() {
        let text = std::fs::read_to_string(path)?;
        if let Ok(models) = serde_json::from_str::<TrainedModels>(&text) {
            return Ok(models);
        }
        // fall through: retrain over a corrupt/outdated cache
    }
    let models = train_models(config)?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string(&models)?)?;
    Ok(models)
}

/// Which cells a [`CellLibrary`] contains: a name (the registry/wire key)
/// plus the [`GateTag`]s to characterize and train.
///
/// # Example
///
/// ```
/// use sigsim::LibrarySpec;
/// let native = LibrarySpec::native();
/// assert_eq!(native.name, "native");
/// assert_eq!(native.tags.len(), 10);
/// assert!(LibrarySpec::nor_only().tags.len() == 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibrarySpec {
    /// Library name (`nor-only`, `native`, or a custom key).
    pub name: String,
    /// The cell variants to train, in training order.
    pub tags: Vec<GateTag>,
}

impl LibrarySpec {
    /// The paper's prototype set: inverter and NOR2 at fan-out 1/2 — the
    /// same four variants [`train_models`] produces.
    #[must_use]
    pub fn nor_only() -> Self {
        Self {
            name: "nor-only".to_string(),
            tags: vec![
                GateTag::Inverter,
                GateTag::InverterFo2,
                GateTag::NorFo1,
                GateTag::NorFo2,
            ],
        }
    }

    /// The full native library: every characterizable cell (INV, NOR2,
    /// NAND2, AND2, OR2 at fan-out 1/2) — enough to simulate
    /// [`sigcircuit::MappingPolicy::Native`] circuits directly.
    #[must_use]
    pub fn native() -> Self {
        Self {
            name: "native".to_string(),
            tags: GateTag::ALL.to_vec(),
        }
    }

    /// The spec whose library implements a mapping policy.
    #[must_use]
    pub fn for_policy(policy: sigcircuit::MappingPolicy) -> Self {
        match policy {
            sigcircuit::MappingPolicy::NorOnly => Self::nor_only(),
            sigcircuit::MappingPolicy::Native => Self::native(),
        }
    }
}

/// One named library entry: a cell variant and its trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LibraryEntry {
    tag: GateTag,
    model: StoredModel,
}

/// A named, serializable collection of trained cell models — the
/// extensible successor of the fixed four-slot [`TrainedModels`].
///
/// Invariants: entry tags are unique (training dedups them), and
/// [`CellLibrary::cell_models`] binds every entry so a circuit gate
/// resolves to at most one slot. The JSON form round-trips exactly
/// (`serde_json::to_string` → `from_str` → `to_string` is a fixed point),
/// which is what makes the on-disk caches and the serde round-trip test
/// meaningful.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    entries: Vec<LibraryEntry>,
    /// The characterization datasets by cell variant (kept for
    /// valid-region ablations and benchmarks, like
    /// [`TrainedModels::datasets`]).
    pub datasets: HashMap<String, Dataset>,
}

impl CellLibrary {
    /// The library name (registry/wire key).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trained cell variants, in training order.
    #[must_use]
    pub fn tags(&self) -> Vec<GateTag> {
        self.entries.iter().map(|e| e.tag).collect()
    }

    /// The runtime model of one cell variant, if trained.
    #[must_use]
    pub fn model(&self, tag: GateTag) -> Option<GateModel> {
        self.entries
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| e.model.to_gate_model())
    }

    /// The dataset of one cell variant.
    #[must_use]
    pub fn dataset(&self, tag: GateTag) -> Option<&Dataset> {
        self.datasets.get(&tag.to_string())
    }

    /// Assembles the runtime [`CellModels`]: one slot per entry, bound to
    /// every gate signature the cell serves. Inverter entries answer both
    /// `GateKind::Inv` and single-input `GateKind::Nor` (a 1-input NOR
    /// *is* an inverter); NOR entries answer multi-input NORs (arities
    /// 2–3, like the prototype); NAND/AND/OR entries answer their
    /// two-input kinds. Model weights are shared (`Arc`), not cloned.
    #[must_use]
    pub fn cell_models(&self) -> CellModels {
        let mut cells = CellModels::empty(self.name.clone());
        for entry in &self.entries {
            let slot = cells.push(entry.model.to_gate_model());
            let fo2 = entry.tag.fanout() >= 2;
            match entry.tag {
                GateTag::Inverter | GateTag::InverterFo2 => {
                    cells.bind(slot, GateKind::Inv, true, fo2);
                    cells.bind(slot, GateKind::Nor, true, fo2);
                }
                GateTag::NorFo1 | GateTag::NorFo2 => {
                    cells.bind(slot, GateKind::Nor, false, fo2);
                }
                GateTag::NandFo1 | GateTag::NandFo2 => {
                    cells.bind(slot, GateKind::Nand, false, fo2);
                }
                GateTag::AndFo1 | GateTag::AndFo2 => {
                    cells.bind(slot, GateKind::And, false, fo2);
                }
                GateTag::OrFo1 | GateTag::OrFo2 => {
                    cells.bind(slot, GateKind::Or, false, fo2);
                }
            }
        }
        cells
    }
}

impl TrainedModels {
    /// Repackages the four-variant bundle as a [`CellLibrary`] named
    /// `nor-only` (shared weights, no retraining) — the bridge from the
    /// legacy artifact shape to library-driven call sites.
    #[must_use]
    pub fn to_library(&self) -> CellLibrary {
        CellLibrary {
            name: "nor-only".to_string(),
            entries: vec![
                LibraryEntry {
                    tag: GateTag::Inverter,
                    model: self.inverter.clone(),
                },
                LibraryEntry {
                    tag: GateTag::InverterFo2,
                    model: self.inverter_fo2.clone(),
                },
                LibraryEntry {
                    tag: GateTag::NorFo1,
                    model: self.nor_fo1.clone(),
                },
                LibraryEntry {
                    tag: GateTag::NorFo2,
                    model: self.nor_fo2.clone(),
                },
            ],
            datasets: self.datasets.clone(),
        }
    }
}

/// Trains a [`CellLibrary`]: one characterization campaign + ANN training
/// per cell variant in `spec`, fanned out across the worker pool exactly
/// like [`train_models`] (results are bit-identical at any parallelism
/// setting). Duplicate tags in the spec are trained once.
///
/// # Errors
///
/// Returns [`PipelineError`] on characterization or training failure.
pub fn train_cell_library(
    spec: &LibrarySpec,
    config: &PipelineConfig,
) -> Result<CellLibrary, PipelineError> {
    let mut tags: Vec<GateTag> = Vec::new();
    for &t in &spec.tags {
        if !tags.contains(&t) {
            tags.push(t);
        }
    }
    // Same budget-splitting scheme as `train_models`: divide the nested
    // stage parallelism instead of multiplying it.
    use sigwave::parallel::resolve_parallelism;
    let outer = resolve_parallelism(config.parallelism).clamp(1, tags.len().max(1));
    let mut inner = config.clone();
    inner.characterization.parallelism =
        (resolve_parallelism(config.characterization.parallelism) / outer).max(1);
    inner.training.parallelism = (resolve_parallelism(config.training.parallelism) / outer).max(1);
    let trained = sigwave::parallel::try_par_map(config.parallelism, &tags, |_, &tag| {
        train_one(tag, &inner)
    })?;
    let mut entries = Vec::with_capacity(tags.len());
    let mut datasets = HashMap::new();
    for (tag, (model, dataset)) in tags.iter().zip(trained) {
        entries.push(LibraryEntry { tag: *tag, model });
        datasets.insert(tag.to_string(), dataset);
    }
    Ok(CellLibrary {
        name: spec.name.clone(),
        entries,
        datasets,
    })
}

/// The on-disk cache path of the native library belonging to a legacy
/// model-cache path: `<stem>.native.json` beside it. Every loader of
/// native artifacts (the service registry, `sigctl golden`, the
/// experiment bins) derives the path through this one helper, so the
/// daemon and the direct golden path can never load different files —
/// the CI byte-parity smoke contract depends on that.
///
/// # Example
///
/// ```
/// use sigsim::native_cache_path;
/// use std::path::Path;
/// assert_eq!(
///     native_cache_path(Path::new("target/sigmodels/ci.json")),
///     Path::new("target/sigmodels/ci.native.json")
/// );
/// assert_eq!(
///     native_cache_path(Path::new("models/custom.bin")),
///     Path::new("models/custom.native.json")
/// );
/// ```
#[must_use]
pub fn native_cache_path(legacy: &Path) -> std::path::PathBuf {
    let stem = legacy.file_stem().map_or_else(
        || "models".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    legacy.with_file_name(format!("{stem}.native.json"))
}

/// Like [`train_cell_library`] but cached: loads the JSON artifact at
/// `path` if it parses *and* carries every cell the spec asks for,
/// otherwise trains and rewrites it (so extending a spec invalidates a
/// stale cache instead of silently serving a smaller library).
///
/// # Errors
///
/// Returns [`PipelineError`] on pipeline or I/O failure. A corrupt cache
/// is retrained, not an error.
pub fn train_cell_library_cached(
    path: &Path,
    spec: &LibrarySpec,
    config: &PipelineConfig,
) -> Result<CellLibrary, PipelineError> {
    if path.exists() {
        let text = std::fs::read_to_string(path)?;
        if let Ok(library) = serde_json::from_str::<CellLibrary>(&text) {
            let tags = library.tags();
            if library.name == spec.name && spec.tags.iter().all(|t| tags.contains(t)) {
                return Ok(library);
            }
        }
        // fall through: retrain over a corrupt/outdated cache
    }
    let library = train_cell_library(spec, config)?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string(&library)?)?;
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigchar::PulseSweep;

    fn tiny() -> PipelineConfig {
        PipelineConfig {
            characterization: CharacterizationConfig {
                sweep: PulseSweep {
                    min: 12e-12,
                    max: 18e-12,
                    step: 6e-12,
                    t0: 60e-12,
                },
                chain_targets: 2,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 60,
                patience: 0,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_trains_all_variants() {
        let trained = train_models(&tiny()).unwrap();
        let models = trained.gate_models();
        // Sanity: a moderate rising input long after the previous output
        // must produce a falling output with positive delay.
        let q = sigtom::TransferQuery {
            t: 2.0,
            a_in: 15.0,
            a_prev_out: 15.0,
        };
        for m in [&models.inverter, &models.nor_fo1, &models.nor_fo2] {
            let p = m.transfer.predict(q);
            assert!(p.delay > 0.0 && p.delay < 0.5, "delay {p:?}");
            assert!(p.a_out < 0.0, "inverting polarity {p:?}");
        }
        assert_eq!(trained.datasets.len(), 4);
        assert!(trained.dataset(GateTag::NorFo1).is_some());
    }

    #[test]
    fn serde_round_trip_preserves_models() {
        let trained = train_models(&tiny()).unwrap();
        let json = serde_json::to_string(&trained).unwrap();
        let back: TrainedModels = serde_json::from_str(&json).unwrap();
        // The reloaded bundle must be byte-identical when re-serialized and
        // must predict identically.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
        assert_eq!(back.datasets.len(), trained.datasets.len());
        let q = sigtom::TransferQuery {
            t: 0.8,
            a_in: -11.0,
            a_prev_out: 9.0,
        };
        assert_eq!(
            trained.gate_models().inverter.transfer.predict(q),
            back.gate_models().inverter.transfer.predict(q)
        );
    }

    #[test]
    fn corrupt_cache_is_retrained_not_fatal() {
        let dir = std::env::temp_dir().join("sigsim_test_corrupt_cache");
        let path = dir.join("models.json");
        std::fs::create_dir_all(&dir).unwrap();
        for corrupt in ["", "{not json", "{\"inverter\": 3}"] {
            std::fs::write(&path, corrupt).unwrap();
            let trained = train_models_cached(&path, &tiny()).expect("retrain over corrupt cache");
            assert_eq!(trained.datasets.len(), 4);
            // The cache must have been replaced by a loadable artifact.
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(serde_json::from_str::<TrainedModels>(&text).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_creates_missing_parent_dirs() {
        let dir = std::env::temp_dir().join("sigsim_test_nested_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a").join("b").join("models.json");
        let trained = train_models_cached(&path, &tiny()).expect("train into missing dirs");
        assert!(path.exists());
        assert_eq!(trained.datasets.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_spec() -> LibrarySpec {
        LibrarySpec {
            name: "tiny-native".to_string(),
            tags: vec![GateTag::NandFo1, GateTag::AndFo1],
        }
    }

    #[test]
    fn cell_library_trains_and_respects_polarity() {
        let lib = train_cell_library(&tiny_spec(), &tiny()).unwrap();
        assert_eq!(lib.name(), "tiny-native");
        assert_eq!(lib.tags(), vec![GateTag::NandFo1, GateTag::AndFo1]);
        let q = sigtom::TransferQuery {
            t: 2.0,
            a_in: 15.0,
            a_prev_out: 15.0,
        };
        let nand = lib.model(GateTag::NandFo1).unwrap().transfer.predict(q);
        assert!(nand.a_out < 0.0, "NAND inverts: {nand:?}");
        let and = lib
            .model(GateTag::AndFo1)
            .unwrap()
            .transfer
            .predict(sigtom::TransferQuery {
                a_prev_out: -15.0,
                ..q
            });
        assert!(and.a_out > 0.0, "AND buffers: {and:?}");
        assert!(lib.model(GateTag::OrFo2).is_none(), "untrained tag");
        assert!(lib.dataset(GateTag::NandFo1).is_some());
    }

    #[test]
    fn cell_library_serde_round_trip() {
        let lib = train_cell_library(&tiny_spec(), &tiny()).unwrap();
        let json = serde_json::to_string(&lib).unwrap();
        let back: CellLibrary = serde_json::from_str(&json).unwrap();
        // Byte-identical re-serialization and identical predictions.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
        assert_eq!(back.name(), lib.name());
        assert_eq!(back.tags(), lib.tags());
        let q = sigtom::TransferQuery {
            t: 0.9,
            a_in: -12.0,
            a_prev_out: 10.0,
        };
        assert_eq!(
            lib.model(GateTag::NandFo1).unwrap().transfer.predict(q),
            back.model(GateTag::NandFo1).unwrap().transfer.predict(q)
        );
    }

    #[test]
    fn cell_library_cache_invalidates_on_spec_growth() {
        let dir = std::env::temp_dir().join("sigsim_test_library_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("lib.json");
        let small = LibrarySpec {
            name: "grow".to_string(),
            tags: vec![GateTag::NandFo1],
        };
        let a = train_cell_library_cached(&path, &small, &tiny()).unwrap();
        assert_eq!(a.tags(), vec![GateTag::NandFo1]);
        // Same spec: served from cache (identical artifact bytes).
        let b = train_cell_library_cached(&path, &small, &tiny()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Grown spec: the stale cache must be retrained, not served.
        let grown = LibrarySpec {
            name: "grow".to_string(),
            tags: vec![GateTag::NandFo1, GateTag::OrFo1],
        };
        let c = train_cell_library_cached(&path, &grown, &tiny()).unwrap();
        assert!(c.tags().contains(&GateTag::OrFo1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trained_models_bridge_to_library() {
        let trained = train_models(&tiny()).unwrap();
        let lib = trained.to_library();
        assert_eq!(lib.name(), "nor-only");
        assert_eq!(lib.tags().len(), 4);
        let cells = lib.cell_models();
        // The bridge binds INV too (the library shape is strictly more
        // capable than the legacy GateModels conversion).
        assert!(cells.slot_for(sigcircuit::GateKind::Inv, 1, 1).is_some());
        assert!(cells.slot_for(sigcircuit::GateKind::Nor, 2, 1).is_some());
        assert!(cells.slot_for(sigcircuit::GateKind::Nand, 2, 1).is_none());
        // Identical predictions through both assemblies.
        let q = sigtom::TransferQuery {
            t: 1.1,
            a_in: 9.0,
            a_prev_out: -8.0,
        };
        let via_models = trained.gate_models().nor_fo1.transfer.predict(q);
        let slot = cells.slot_for(sigcircuit::GateKind::Nor, 2, 1).unwrap();
        assert_eq!(via_models, cells.by_slot(slot).transfer.predict(q));
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join("sigsim_test_models");
        let path = dir.join("models.json");
        let _ = std::fs::remove_file(&path);
        let a = train_models_cached(&path, &tiny()).unwrap();
        assert!(path.exists());
        let b = train_models_cached(&path, &tiny()).unwrap();
        // The second load must come from cache and be identical.
        let q = sigtom::TransferQuery {
            t: 1.0,
            a_in: 10.0,
            a_prev_out: -12.0,
        };
        assert_eq!(
            a.gate_models().nor_fo1.transfer.predict(q),
            b.gate_models().nor_fo1.transfer.predict(q)
        );
        let _ = std::fs::remove_file(&path);
    }
}
