//! The end-to-end training pipeline: characterize → train ANNs → build
//! valid regions → assemble [`GateModels`], with JSON caching of the
//! trained artifacts (the paper's "trained ANNs stored with the prototype"
//! flow).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sigchar::{characterize, CharError, CharacterizationConfig, Dataset, GateTag};
use sigtom::{AnnTrainConfig, AnnTransfer, GateModel, TrainTransferError, ValidRegion};

use crate::simulator::GateModels;

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Characterization campaign settings (sweep, chains, engine).
    pub characterization: CharacterizationConfig,
    /// ANN training settings.
    pub training: AnnTrainConfig,
    /// Valid-region margin; `None` disables region containment (ablation).
    pub region_margin: Option<f64>,
    /// Worker threads for the four gate variants (`0` = auto-detect, `1` =
    /// sequential). Nested stages (sweep, per-network training) have their
    /// own knobs; [`PipelineConfig::with_parallelism`] sets all three.
    pub parallelism: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 5e-12,
                    max: 20e-12,
                    step: 2.5e-12, // 7 values -> 343 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 4,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig::default(),
            region_margin: Some(4.0),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }
}

impl PipelineConfig {
    /// A fast, CI-scale pipeline (coarser sweep, shorter training).
    #[must_use]
    pub fn fast() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 6e-12,
                    max: 20e-12,
                    step: 7e-12, // 3 values -> 27 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 3,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 400,
                patience: 60,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }

    /// A minimal smoke-test pipeline (coarsest sweep, very short
    /// training): trains in about a second, giving CI jobs and service
    /// tests real (if rough) models with deterministic weights. Accuracy
    /// is NOT representative — use [`PipelineConfig::fast`] or the default
    /// for anything quantitative.
    #[must_use]
    pub fn ci() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 10e-12,
                    max: 20e-12,
                    step: 5e-12, // 3 values -> 27 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 3,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 250,
                patience: 0,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }

    /// Sets every parallelism knob in the pipeline — the variant fan-out
    /// plus the nested characterization-sweep and per-network-training
    /// pools (`0` = auto-detect, `1` = fully sequential).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self.characterization.parallelism = parallelism;
        self.training.parallelism = parallelism;
        self
    }
}

/// Error from the training pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Characterization failed.
    Characterization(CharError),
    /// Training failed.
    Training(TrainTransferError),
    /// Cache I/O failed.
    Io(std::io::Error),
    /// Cache (de)serialization failed.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Characterization(e) => write!(f, "characterization failed: {e}"),
            Self::Training(e) => write!(f, "training failed: {e}"),
            Self::Io(e) => write!(f, "model cache I/O failed: {e}"),
            Self::Serde(e) => write!(f, "model cache corrupt: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Characterization(e) => Some(e),
            Self::Training(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::Serde(e) => Some(e),
        }
    }
}

impl From<CharError> for PipelineError {
    fn from(e: CharError) -> Self {
        Self::Characterization(e)
    }
}

impl From<TrainTransferError> for PipelineError {
    fn from(e: TrainTransferError) -> Self {
        Self::Training(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for PipelineError {
    fn from(e: serde_json::Error) -> Self {
        Self::Serde(e)
    }
}

/// One trained gate variant in serializable form.
///
/// The ANN and region are held behind `Arc` so [`TrainedModels::gate_models`]
/// shares the trained weights instead of deep-cloning them — the `sigserve`
/// model registry hands the same allocations to every request.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredModel {
    ann: Arc<AnnTransfer>,
    region: Option<Arc<ValidRegion>>,
}

impl StoredModel {
    fn to_gate_model(&self) -> GateModel {
        let mut m = GateModel::new(Arc::clone(&self.ann) as _);
        if let Some(r) = &self.region {
            m = m.with_region(Arc::clone(r));
        }
        m
    }
}

/// The trained artifact bundle: gate models plus the datasets they were
/// trained on (kept for valid-region ablations and benchmarks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModels {
    inverter: StoredModel,
    inverter_fo2: StoredModel,
    nor_fo1: StoredModel,
    nor_fo2: StoredModel,
    /// The characterization datasets by gate variant.
    pub datasets: HashMap<String, Dataset>,
}

impl TrainedModels {
    /// Assembles the runtime gate models.
    #[must_use]
    pub fn gate_models(&self) -> GateModels {
        GateModels {
            inverter: self.inverter.to_gate_model(),
            inverter_fo2: self.inverter_fo2.to_gate_model(),
            nor_fo1: self.nor_fo1.to_gate_model(),
            nor_fo2: self.nor_fo2.to_gate_model(),
        }
    }

    /// The dataset of one gate variant.
    #[must_use]
    pub fn dataset(&self, tag: GateTag) -> Option<&Dataset> {
        self.datasets.get(&tag.to_string())
    }
}

fn train_one(
    tag: GateTag,
    config: &PipelineConfig,
) -> Result<(StoredModel, Dataset), PipelineError> {
    let outcome = characterize(tag, &config.characterization)?;
    let ann = Arc::new(AnnTransfer::train(&outcome.dataset, &config.training)?);
    let region = config.region_margin.map(|margin| {
        let pts: Vec<[f64; 3]> = outcome
            .dataset
            .rising
            .iter()
            .chain(&outcome.dataset.falling)
            .map(|s| s.features())
            .collect();
        Arc::new(ValidRegion::build(&pts, margin))
    });
    Ok((StoredModel { ann, region }, outcome.dataset))
}

/// Runs the full pipeline: characterize and train all four gate variants
/// (inverter at fan-out 1/2, NOR at fan-out 1/2).
///
/// # Errors
///
/// Returns [`PipelineError`] on characterization or training failure.
pub fn train_models(config: &PipelineConfig) -> Result<TrainedModels, PipelineError> {
    // The four gate variants are independent end-to-end (characterization
    // chain, dataset, networks), so fan them out across the worker pool.
    let tags = [
        GateTag::Inverter,
        GateTag::InverterFo2,
        GateTag::NorFo1,
        GateTag::NorFo2,
    ];
    // The nested stages (sweep, per-network training) have their own
    // pools; divide the budget instead of multiplying it, so e.g. a
    // 16-core default runs 4 variant workers × 4 sweep workers rather
    // than 4 × 16 oversubscribed threads. Results are unaffected —
    // parallelism never changes outputs.
    use sigwave::parallel::resolve_parallelism;
    let outer = resolve_parallelism(config.parallelism).clamp(1, tags.len());
    let mut inner = config.clone();
    inner.characterization.parallelism =
        (resolve_parallelism(config.characterization.parallelism) / outer).max(1);
    inner.training.parallelism = (resolve_parallelism(config.training.parallelism) / outer).max(1);
    let mut trained = sigwave::parallel::try_par_map(config.parallelism, &tags, |_, &tag| {
        train_one(tag, &inner)
    })?
    .into_iter();
    let mut next = || trained.next().expect("four variants");
    let (inverter, d_inv) = next();
    let (inverter_fo2, d_inv2) = next();
    let (nor_fo1, d_fo1) = next();
    let (nor_fo2, d_fo2) = next();
    let mut datasets = HashMap::new();
    datasets.insert(GateTag::Inverter.to_string(), d_inv);
    datasets.insert(GateTag::InverterFo2.to_string(), d_inv2);
    datasets.insert(GateTag::NorFo1.to_string(), d_fo1);
    datasets.insert(GateTag::NorFo2.to_string(), d_fo2);
    Ok(TrainedModels {
        inverter,
        inverter_fo2,
        nor_fo1,
        nor_fo2,
        datasets,
    })
}

/// Like [`train_models`] but cached: loads the JSON artifact at `path` if
/// present, otherwise trains and writes it.
///
/// # Errors
///
/// Returns [`PipelineError`] on pipeline or I/O failure. A corrupt cache is
/// retrained, not an error.
pub fn train_models_cached(
    path: &Path,
    config: &PipelineConfig,
) -> Result<TrainedModels, PipelineError> {
    if path.exists() {
        let text = std::fs::read_to_string(path)?;
        if let Ok(models) = serde_json::from_str::<TrainedModels>(&text) {
            return Ok(models);
        }
        // fall through: retrain over a corrupt/outdated cache
    }
    let models = train_models(config)?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string(&models)?)?;
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigchar::PulseSweep;

    fn tiny() -> PipelineConfig {
        PipelineConfig {
            characterization: CharacterizationConfig {
                sweep: PulseSweep {
                    min: 12e-12,
                    max: 18e-12,
                    step: 6e-12,
                    t0: 60e-12,
                },
                chain_targets: 2,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 60,
                patience: 0,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_trains_all_variants() {
        let trained = train_models(&tiny()).unwrap();
        let models = trained.gate_models();
        // Sanity: a moderate rising input long after the previous output
        // must produce a falling output with positive delay.
        let q = sigtom::TransferQuery {
            t: 2.0,
            a_in: 15.0,
            a_prev_out: 15.0,
        };
        for m in [&models.inverter, &models.nor_fo1, &models.nor_fo2] {
            let p = m.transfer.predict(q);
            assert!(p.delay > 0.0 && p.delay < 0.5, "delay {p:?}");
            assert!(p.a_out < 0.0, "inverting polarity {p:?}");
        }
        assert_eq!(trained.datasets.len(), 4);
        assert!(trained.dataset(GateTag::NorFo1).is_some());
    }

    #[test]
    fn serde_round_trip_preserves_models() {
        let trained = train_models(&tiny()).unwrap();
        let json = serde_json::to_string(&trained).unwrap();
        let back: TrainedModels = serde_json::from_str(&json).unwrap();
        // The reloaded bundle must be byte-identical when re-serialized and
        // must predict identically.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
        assert_eq!(back.datasets.len(), trained.datasets.len());
        let q = sigtom::TransferQuery {
            t: 0.8,
            a_in: -11.0,
            a_prev_out: 9.0,
        };
        assert_eq!(
            trained.gate_models().inverter.transfer.predict(q),
            back.gate_models().inverter.transfer.predict(q)
        );
    }

    #[test]
    fn corrupt_cache_is_retrained_not_fatal() {
        let dir = std::env::temp_dir().join("sigsim_test_corrupt_cache");
        let path = dir.join("models.json");
        std::fs::create_dir_all(&dir).unwrap();
        for corrupt in ["", "{not json", "{\"inverter\": 3}"] {
            std::fs::write(&path, corrupt).unwrap();
            let trained = train_models_cached(&path, &tiny()).expect("retrain over corrupt cache");
            assert_eq!(trained.datasets.len(), 4);
            // The cache must have been replaced by a loadable artifact.
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(serde_json::from_str::<TrainedModels>(&text).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_creates_missing_parent_dirs() {
        let dir = std::env::temp_dir().join("sigsim_test_nested_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a").join("b").join("models.json");
        let trained = train_models_cached(&path, &tiny()).expect("train into missing dirs");
        assert!(path.exists());
        assert_eq!(trained.datasets.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join("sigsim_test_models");
        let path = dir.join("models.json");
        let _ = std::fs::remove_file(&path);
        let a = train_models_cached(&path, &tiny()).unwrap();
        assert!(path.exists());
        let b = train_models_cached(&path, &tiny()).unwrap();
        // The second load must come from cache and be identical.
        let q = sigtom::TransferQuery {
            t: 1.0,
            a_in: 10.0,
            a_prev_out: -12.0,
        };
        assert_eq!(
            a.gate_models().nor_fo1.transfer.predict(q),
            b.gate_models().nor_fo1.transfer.predict(q)
        );
        let _ = std::fs::remove_file(&path);
    }
}
