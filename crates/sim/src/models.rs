//! The end-to-end training pipeline: characterize → train ANNs → build
//! valid regions → assemble [`GateModels`], with JSON caching of the
//! trained artifacts (the paper's "trained ANNs stored with the prototype"
//! flow).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sigchar::{characterize, CharError, CharacterizationConfig, Dataset, GateTag};
use sigtom::{AnnTrainConfig, AnnTransfer, GateModel, TrainTransferError, ValidRegion};

use crate::simulator::GateModels;

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Characterization campaign settings (sweep, chains, engine).
    pub characterization: CharacterizationConfig,
    /// ANN training settings.
    pub training: AnnTrainConfig,
    /// Valid-region margin; `None` disables region containment (ablation).
    pub region_margin: Option<f64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 5e-12,
                    max: 20e-12,
                    step: 2.5e-12, // 7 values -> 343 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 4,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig::default(),
            region_margin: Some(4.0),
        }
    }
}

impl PipelineConfig {
    /// A fast, CI-scale pipeline (coarser sweep, shorter training).
    #[must_use]
    pub fn fast() -> Self {
        Self {
            characterization: CharacterizationConfig {
                sweep: sigchar::PulseSweep {
                    min: 6e-12,
                    max: 20e-12,
                    step: 7e-12, // 3 values -> 27 runs per gate variant
                    t0: 60e-12,
                },
                chain_targets: 3,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 400,
                patience: 60,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
        }
    }
}

/// Error from the training pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Characterization failed.
    Characterization(CharError),
    /// Training failed.
    Training(TrainTransferError),
    /// Cache I/O failed.
    Io(std::io::Error),
    /// Cache (de)serialization failed.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Characterization(e) => write!(f, "characterization failed: {e}"),
            Self::Training(e) => write!(f, "training failed: {e}"),
            Self::Io(e) => write!(f, "model cache I/O failed: {e}"),
            Self::Serde(e) => write!(f, "model cache corrupt: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Characterization(e) => Some(e),
            Self::Training(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::Serde(e) => Some(e),
        }
    }
}

impl From<CharError> for PipelineError {
    fn from(e: CharError) -> Self {
        Self::Characterization(e)
    }
}

impl From<TrainTransferError> for PipelineError {
    fn from(e: TrainTransferError) -> Self {
        Self::Training(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for PipelineError {
    fn from(e: serde_json::Error) -> Self {
        Self::Serde(e)
    }
}

/// One trained gate variant in serializable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredModel {
    ann: AnnTransfer,
    region: Option<ValidRegion>,
}

impl StoredModel {
    fn to_gate_model(&self) -> GateModel {
        let mut m = GateModel::new(Arc::new(self.ann.clone()));
        if let Some(r) = &self.region {
            m = m.with_region(Arc::new(r.clone()));
        }
        m
    }
}

/// The trained artifact bundle: gate models plus the datasets they were
/// trained on (kept for valid-region ablations and benchmarks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModels {
    inverter: StoredModel,
    inverter_fo2: StoredModel,
    nor_fo1: StoredModel,
    nor_fo2: StoredModel,
    /// The characterization datasets by gate variant.
    pub datasets: HashMap<String, Dataset>,
}

impl TrainedModels {
    /// Assembles the runtime gate models.
    #[must_use]
    pub fn gate_models(&self) -> GateModels {
        GateModels {
            inverter: self.inverter.to_gate_model(),
            inverter_fo2: self.inverter_fo2.to_gate_model(),
            nor_fo1: self.nor_fo1.to_gate_model(),
            nor_fo2: self.nor_fo2.to_gate_model(),
        }
    }

    /// The dataset of one gate variant.
    #[must_use]
    pub fn dataset(&self, tag: GateTag) -> Option<&Dataset> {
        self.datasets.get(&tag.to_string())
    }
}

fn train_one(
    tag: GateTag,
    config: &PipelineConfig,
) -> Result<(StoredModel, Dataset), PipelineError> {
    let outcome = characterize(tag, &config.characterization)?;
    let ann = AnnTransfer::train(&outcome.dataset, &config.training)?;
    let region = config.region_margin.map(|margin| {
        let pts: Vec<[f64; 3]> = outcome
            .dataset
            .rising
            .iter()
            .chain(&outcome.dataset.falling)
            .map(|s| s.features())
            .collect();
        ValidRegion::build(&pts, margin)
    });
    Ok((StoredModel { ann, region }, outcome.dataset))
}

/// Runs the full pipeline: characterize and train all three gate variants.
///
/// # Errors
///
/// Returns [`PipelineError`] on characterization or training failure.
pub fn train_models(config: &PipelineConfig) -> Result<TrainedModels, PipelineError> {
    let (inverter, d_inv) = train_one(GateTag::Inverter, config)?;
    let (inverter_fo2, d_inv2) = train_one(GateTag::InverterFo2, config)?;
    let (nor_fo1, d_fo1) = train_one(GateTag::NorFo1, config)?;
    let (nor_fo2, d_fo2) = train_one(GateTag::NorFo2, config)?;
    let mut datasets = HashMap::new();
    datasets.insert(GateTag::Inverter.to_string(), d_inv);
    datasets.insert(GateTag::InverterFo2.to_string(), d_inv2);
    datasets.insert(GateTag::NorFo1.to_string(), d_fo1);
    datasets.insert(GateTag::NorFo2.to_string(), d_fo2);
    Ok(TrainedModels {
        inverter,
        inverter_fo2,
        nor_fo1,
        nor_fo2,
        datasets,
    })
}

/// Like [`train_models`] but cached: loads the JSON artifact at `path` if
/// present, otherwise trains and writes it.
///
/// # Errors
///
/// Returns [`PipelineError`] on pipeline or I/O failure. A corrupt cache is
/// retrained, not an error.
pub fn train_models_cached(
    path: &Path,
    config: &PipelineConfig,
) -> Result<TrainedModels, PipelineError> {
    if path.exists() {
        let text = std::fs::read_to_string(path)?;
        if let Ok(models) = serde_json::from_str::<TrainedModels>(&text) {
            return Ok(models);
        }
        // fall through: retrain over a corrupt/outdated cache
    }
    let models = train_models(config)?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string(&models)?)?;
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigchar::PulseSweep;

    fn tiny() -> PipelineConfig {
        PipelineConfig {
            characterization: CharacterizationConfig {
                sweep: PulseSweep {
                    min: 12e-12,
                    max: 18e-12,
                    step: 6e-12,
                    t0: 60e-12,
                },
                chain_targets: 2,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 60,
                patience: 0,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
        }
    }

    #[test]
    fn pipeline_trains_all_variants() {
        let trained = train_models(&tiny()).unwrap();
        let models = trained.gate_models();
        // Sanity: a moderate rising input long after the previous output
        // must produce a falling output with positive delay.
        let q = sigtom::TransferQuery {
            t: 2.0,
            a_in: 15.0,
            a_prev_out: 15.0,
        };
        for m in [&models.inverter, &models.nor_fo1, &models.nor_fo2] {
            let p = m.transfer.predict(q);
            assert!(p.delay > 0.0 && p.delay < 0.5, "delay {p:?}");
            assert!(p.a_out < 0.0, "inverting polarity {p:?}");
        }
        assert_eq!(trained.datasets.len(), 4);
        assert!(trained.dataset(GateTag::NorFo1).is_some());
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join("sigsim_test_models");
        let path = dir.join("models.json");
        let _ = std::fs::remove_file(&path);
        let a = train_models_cached(&path, &tiny()).unwrap();
        assert!(path.exists());
        let b = train_models_cached(&path, &tiny()).unwrap();
        // The second load must come from cache and be identical.
        let q = sigtom::TransferQuery {
            t: 1.0,
            a_in: 10.0,
            a_prev_out: -12.0,
        };
        assert_eq!(
            a.gate_models().nor_fo1.transfer.predict(q),
            b.gate_models().nor_fo1.transfer.predict(q)
        );
        let _ = std::fs::remove_file(&path);
    }
}
