//! The three-way comparison harness of Sec. V: one circuit, one stimulus,
//! three simulators — analog reference (nanospice standing in for
//! SPICE/Spectre), digital baseline (digilog standing in for ModelSim),
//! and the sigmoid prototype — with the paper's `t_err` accounting.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use digilog::{simulate as simulate_digital, GateChannels};
use nanospice::{Engine, EngineConfig, Pwl, Stimulus};
use rand::SeedableRng;
use sigchar::{build_analog, AnalogOptions, BuildAnalogError, CharError, DelayTable};
use sigcircuit::{Circuit, NetId};
use sigfit::{fit_waveform, FitOptions};
use sigtom::TomOptions;
use sigwave::metrics::{t_err_digital, Window};
use sigwave::{DigitalTrace, Level, SigmoidTrace, Waveform};

use crate::simulator::{
    simulate_cells_with, CellModels, CircuitProgram, FleetScratch, GateModels, SigmoidSimConfig,
    SigmoidSimError,
};

/// How the sigmoid simulator's input traces are derived from the analog
/// reference inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmoidInputMode {
    /// Fit sigmoids to the shaped analog input waveforms (the paper's
    /// standard setup).
    #[default]
    Fitted,
    /// Use exactly the transitions the digital simulator sees (threshold
    /// crossings with a fixed steep slope) — the "same stimulus" row of
    /// Table I, where "our sigmoid simulator was stimulated with exactly
    /// the same input waveforms as ModelSim".
    SameAsDigital,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Analog translation options (shaping/termination, caps).
    pub analog: AnalogOptions,
    /// Analog engine settings.
    pub engine: EngineConfig,
    /// Waveform fitting options (for input fitting).
    pub fit: FitOptions,
    /// TOM prediction options.
    pub tom: TomOptions,
    /// Extra settling time simulated after the last input transition
    /// (seconds).
    pub tail: f64,
    /// How the sigmoid simulator's inputs are derived.
    pub sigmoid_inputs: SigmoidInputMode,
    /// Scheduling of the sigmoid simulator (batching/parallelism); traces
    /// are identical at every setting, only `wall_sigmoid` changes.
    pub sigmoid_sim: SigmoidSimConfig,
    /// SIMD kernel policy override. `None` leaves the process-global
    /// policy untouched (resolved from the `SIG_SIMD` environment
    /// variable on first use); `Some` pins it via
    /// [`signn::simd::set_policy`] before the comparison runs. Traces are
    /// bit-identical at every level, only `wall_sigmoid` changes.
    pub simd: Option<signn::simd::SimdPolicy>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            analog: AnalogOptions::default(),
            engine: EngineConfig::default(),
            fit: FitOptions::default(),
            tom: TomOptions::default(),
            tail: 120e-12,
            sigmoid_inputs: SigmoidInputMode::Fitted,
            sigmoid_sim: SigmoidSimConfig::default(),
            simd: None,
        }
    }
}

/// The fixed slope used when converting Heaviside transitions to sigmoids
/// in [`SigmoidInputMode::SameAsDigital`] (scaled units; a sharp but
/// finite edge).
pub const SAME_STIMULUS_SLOPE: f64 = 40.0;

/// Converts a digital trace into a sigmoidal trace with fixed steep slopes
/// at the same crossing times.
#[must_use]
pub fn digital_to_sigmoid(trace: &DigitalTrace, vdd: f64) -> SigmoidTrace {
    let mut rising = !trace.initial().is_high();
    let transitions = trace
        .toggles()
        .iter()
        .map(|&t| {
            let s = if rising {
                sigwave::Sigmoid::rising(SAME_STIMULUS_SLOPE, sigwave::to_scaled_time(t))
            } else {
                sigwave::Sigmoid::falling(SAME_STIMULUS_SLOPE, sigwave::to_scaled_time(t))
            };
            rising = !rising;
            s
        })
        .collect();
    SigmoidTrace::from_transitions(trace.initial(), transitions, vdd)
        .expect("digital traces alternate by construction")
}

/// Error from the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// Analog build failed.
    Build(BuildAnalogError),
    /// Analog simulation failed.
    Analog(nanospice::SimulationError),
    /// Input fitting failed.
    Fit(sigfit::WaveformFitError),
    /// Sigmoid simulation failed.
    Sigmoid(SigmoidSimError),
    /// Digital simulation failed.
    Digital(digilog::DigitalSimError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "analog build: {e}"),
            Self::Analog(e) => write!(f, "analog simulation: {e}"),
            Self::Fit(e) => write!(f, "input fitting: {e}"),
            Self::Sigmoid(e) => write!(f, "sigmoid simulation: {e}"),
            Self::Digital(e) => write!(f, "digital simulation: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<BuildAnalogError> for HarnessError {
    fn from(e: BuildAnalogError) -> Self {
        Self::Build(e)
    }
}
impl From<nanospice::SimulationError> for HarnessError {
    fn from(e: nanospice::SimulationError) -> Self {
        Self::Analog(e)
    }
}
impl From<sigfit::WaveformFitError> for HarnessError {
    fn from(e: sigfit::WaveformFitError) -> Self {
        Self::Fit(e)
    }
}
impl From<SigmoidSimError> for HarnessError {
    fn from(e: SigmoidSimError) -> Self {
        Self::Sigmoid(e)
    }
}
impl From<digilog::DigitalSimError> for HarnessError {
    fn from(e: digilog::DigitalSimError) -> Self {
        Self::Digital(e)
    }
}

impl From<CharError> for HarnessError {
    fn from(e: CharError) -> Self {
        match e {
            CharError::Build(b) => Self::Build(b),
            CharError::Simulation(s) => Self::Analog(s),
            CharError::Fit(f) => Self::Fit(f),
        }
    }
}

/// Per-output traces from one comparison run (the Fig. 5 data).
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Output net name.
    pub net: String,
    /// The analog reference waveform.
    pub analog: Waveform,
    /// The digital baseline's prediction.
    pub digital: DigitalTrace,
    /// The sigmoid prototype's prediction.
    pub sigmoid: SigmoidTrace,
}

/// Aggregate result of one comparison run (one Table I cell contribution).
#[derive(Debug, Clone)]
pub struct ComparisonOutcome {
    /// Total `t_err` of the digital baseline vs the analog reference,
    /// summed over all outputs (seconds).
    pub t_err_digital: f64,
    /// Total `t_err` of the sigmoid prototype (seconds).
    pub t_err_sigmoid: f64,
    /// Number of primary outputs compared.
    pub outputs: usize,
    /// Wall time of the analog engine run.
    pub wall_analog: Duration,
    /// Wall time of the digital simulation.
    pub wall_digital: Duration,
    /// Wall time of the sigmoid simulation (prediction only).
    pub wall_sigmoid: Duration,
    /// The observation window used for `t_err`.
    pub window: Window,
    /// Per-output traces (for plots and debugging).
    pub bundles: Vec<TraceBundle>,
}

impl ComparisonOutcome {
    /// The paper's error ratio `t_err_sigmoid / t_err_digital` (∞ when the
    /// digital baseline is perfect).
    #[must_use]
    pub fn error_ratio(&self) -> f64 {
        if self.t_err_digital == 0.0 {
            if self.t_err_sigmoid == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.t_err_sigmoid / self.t_err_digital
        }
    }
}

/// Aggregate statistics of one `t_err` series across a Monte-Carlo
/// campaign (all values in seconds, like the per-run fields).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McStats {
    /// Arithmetic mean over all runs.
    pub mean: f64,
    /// Smallest per-run value.
    pub min: f64,
    /// Largest per-run value.
    pub max: f64,
    /// 95th percentile (nearest-rank on the sorted runs — the value at
    /// index `ceil(0.95·n) - 1`, so it is always an observed run).
    pub p95: f64,
}

impl McStats {
    fn of(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "stats need at least one run");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        values.sort_by(f64::total_cmp);
        // Nearest-rank: ceil(0.95 n) clamped into 1..=n.
        let rank = (0.95 * n as f64).ceil() as usize;
        Self {
            mean,
            min: values[0],
            max: values[n - 1],
            p95: values[rank.clamp(1, n) - 1],
        }
    }
}

/// Per-circuit aggregation of a Monte-Carlo comparison campaign: the
/// digital and sigmoid `t_err` distributions, total wall-clock per
/// simulator, and the total gate-evaluation count — the row form the
/// `table1` binary prints.
#[derive(Debug, Clone, PartialEq)]
pub struct McSummary {
    /// Number of outcomes aggregated.
    pub runs: usize,
    /// `t_err` statistics of the digital baseline.
    pub digital: McStats,
    /// `t_err` statistics of the sigmoid prototype.
    pub sigmoid: McStats,
    /// Total analog-engine wall time across all runs.
    pub wall_analog: Duration,
    /// Total digital-baseline wall time across all runs.
    pub wall_digital: Duration,
    /// Total sigmoid-simulation wall time across all runs (in fleet mode
    /// this is the fleet execution's wall time, re-assembled from the
    /// per-run amortized shares).
    pub wall_sigmoid: Duration,
    /// Total gates evaluated: `runs ×` the circuit's gate count (each
    /// comparison run evaluates every gate exactly once).
    pub gates_evaluated: u64,
}

impl McSummary {
    /// Aggregates a campaign's outcomes; `gates_per_run` is the circuit's
    /// gate count.
    ///
    /// # Panics
    ///
    /// Panics on an empty outcome slice (no runs — nothing to
    /// summarize).
    #[must_use]
    pub fn from_outcomes(outcomes: &[ComparisonOutcome], gates_per_run: usize) -> Self {
        assert!(!outcomes.is_empty(), "cannot summarize zero outcomes");
        Self {
            runs: outcomes.len(),
            digital: McStats::of(outcomes.iter().map(|o| o.t_err_digital).collect()),
            sigmoid: McStats::of(outcomes.iter().map(|o| o.t_err_sigmoid).collect()),
            wall_analog: outcomes.iter().map(|o| o.wall_analog).sum(),
            wall_digital: outcomes.iter().map(|o| o.wall_digital).sum(),
            wall_sigmoid: outcomes.iter().map(|o| o.wall_sigmoid).sum(),
            gates_evaluated: (outcomes.len() * gates_per_run) as u64,
        }
    }

    /// The campaign-level error ratio `mean t_err_sigmoid / mean
    /// t_err_digital`, with the same perfect-baseline conventions as
    /// [`ComparisonOutcome::error_ratio`].
    #[must_use]
    pub fn error_ratio(&self) -> f64 {
        if self.digital.mean == 0.0 {
            if self.sigmoid.mean == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.sigmoid.mean / self.digital.mean
        }
    }
}

/// Runs the full three-way comparison of a NOR-only circuit with the
/// paper's four-variant models — a thin wrapper binding `models` as a
/// [`CellModels`] set and calling [`compare_circuit_cells`].
///
/// # Errors
///
/// Returns [`HarnessError`] if any stage fails structurally.
pub fn compare_circuit(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, DigitalTrace>,
    models: &GateModels,
    delays: &DelayTable,
    config: &HarnessConfig,
) -> Result<ComparisonOutcome, HarnessError> {
    compare_circuit_cells(
        circuit,
        stimuli,
        &CellModels::nor_only(models),
        delays,
        config,
    )
}

/// Runs the full three-way comparison of a library-cell circuit under the
/// given digital input stimuli.
///
/// The analog run is the reference: its shaped input waveforms are fitted
/// (for the sigmoid simulator) and digitized (for the digital simulator),
/// so all three simulators observe the *same* inputs, exactly as in the
/// paper's setup. The circuit may be in either mapped form — NOR-only or
/// native cells — as long as `cells` covers its gates and the analog
/// translator can realize them (INV, NOR1–3, NAND2, AND2, OR2).
///
/// # Errors
///
/// Returns [`HarnessError`] if any stage fails structurally.
pub fn compare_circuit_cells(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, DigitalTrace>,
    cells: &CellModels,
    delays: &DelayTable,
    config: &HarnessConfig,
) -> Result<ComparisonOutcome, HarnessError> {
    if let Some(policy) = config.simd {
        signn::simd::set_policy(policy);
    }
    let prepared = prepare_run(circuit, stimuli, delays, config)?;
    let start = Instant::now();
    let sigmoid_result = simulate_cells_with(
        circuit,
        &prepared.sigmoid_inputs,
        cells,
        config.tom,
        &config.sigmoid_sim,
    )?;
    let wall_sigmoid = start.elapsed();
    Ok(finish_run(
        circuit,
        prepared,
        &sigmoid_result,
        wall_sigmoid,
        config,
    ))
}

/// Everything one comparison run produces *before* the sigmoid simulator
/// executes: the analog reference (probed output waveforms), the common
/// derived inputs, and the digital baseline with its timing. Splitting
/// here lets the fleet Monte-Carlo path run the sigmoid stage of many
/// runs as one [`CircuitProgram::execute_fleet`] while keeping every
/// other stage — and therefore every `t_err` — identical to the
/// independent path.
struct PreparedRun {
    sigmoid_inputs: HashMap<NetId, Arc<SigmoidTrace>>,
    /// Analog output waveforms, in `circuit.outputs()` order.
    output_waves: Vec<Waveform>,
    digital: digilog::DigitalSimResult,
    wall_analog: Duration,
    wall_digital: Duration,
    t_end: f64,
}

/// The analog + input-derivation + digital-baseline stages of
/// [`compare_circuit_cells`] (everything up to the sigmoid simulation).
fn prepare_run(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, DigitalTrace>,
    delays: &DelayTable,
    config: &HarnessConfig,
) -> Result<PreparedRun, HarnessError> {
    // ---- Analog reference -------------------------------------------------
    let mut analog_stimuli: HashMap<NetId, Box<dyn Stimulus>> = HashMap::new();
    let mut init = HashMap::new();
    let mut t_last: f64 = 0.0;
    for (&net, trace) in stimuli {
        analog_stimuli.insert(net, Box::new(Pwl::heaviside_train(trace, 0.8, 1e-12)));
        init.insert(net, trace.initial());
        if let Some(&last) = trace.toggles().last() {
            t_last = t_last.max(last);
        }
    }
    let analog = build_analog(circuit, analog_stimuli, &init, &config.analog)?;
    let mut probe_names: Vec<String> = Vec::new();
    for &i in circuit.inputs() {
        probe_names.push(analog.probe_name(i).to_string());
    }
    for &o in circuit.outputs() {
        probe_names.push(analog.probe_name(o).to_string());
    }
    let probes: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let t_end = t_last + config.tail;

    let start = Instant::now();
    let analog_result = Engine::new(config.engine).run(&analog.network, 0.0, t_end, &probes)?;
    let wall_analog = start.elapsed();

    // ---- Derive the common inputs -----------------------------------------
    let threshold = config.tom.vdd / 2.0;
    let mut sigmoid_inputs: HashMap<NetId, Arc<SigmoidTrace>> = HashMap::new();
    let mut digital_inputs: HashMap<NetId, DigitalTrace> = HashMap::new();
    for &i in circuit.inputs() {
        let wave = analog_result
            .waveform(analog.probe_name(i))
            .expect("probed");
        let digitized = wave.digitize(threshold);
        let sigmoid = match config.sigmoid_inputs {
            SigmoidInputMode::Fitted => fit_waveform(wave, &config.fit)?.trace,
            SigmoidInputMode::SameAsDigital => digital_to_sigmoid(&digitized, config.tom.vdd),
        };
        sigmoid_inputs.insert(i, Arc::new(sigmoid));
        digital_inputs.insert(i, digitized);
    }

    // ---- Digital baseline --------------------------------------------------
    // Per-instance delays: the digital baseline knows each gate's actual
    // fan-out *and* interconnect (like ModelSim fed by Genus/Innovus
    // extraction), while the sigmoid prototype only has its FO1/FO2 models.
    // Lookups are keyed by cell class, so native NAND2/AND2/OR2 instances
    // use their own measured chain delays when the table carries them
    // (tables without those classes fall back to the NOR class — the
    // historical approximation, and still exact for NOR-only circuits).
    let fanouts = circuit.fanout_counts();
    let channels = GateChannels::from_fn(circuit, |gi| {
        let gate = &circuit.gates()[gi];
        let mult = sigchar::wire_cap_multiplier(
            circuit.net_name(gate.output),
            config.analog.wire_cap_variation,
        );
        Box::new(
            delays
                .lookup_cell(delay_class(gate), fanouts[gate.output.0], mult)
                .to_inertial(),
        )
    });
    let start = Instant::now();
    let digital_result = simulate_digital(circuit, &digital_inputs, &channels)?;
    let wall_digital = start.elapsed();

    let output_waves = circuit
        .outputs()
        .iter()
        .map(|&o| {
            analog_result
                .waveform(analog.probe_name(o))
                .expect("probed")
                .clone()
        })
        .collect();
    Ok(PreparedRun {
        sigmoid_inputs,
        output_waves,
        digital: digital_result,
        wall_analog,
        wall_digital,
        t_end,
    })
}

/// The `t_err` accounting stage of [`compare_circuit_cells`]: folds a
/// prepared run and its sigmoid result into a [`ComparisonOutcome`].
fn finish_run(
    circuit: &Circuit,
    prepared: PreparedRun,
    sigmoid_result: &crate::simulator::SigmoidSimResult,
    wall_sigmoid: Duration,
    config: &HarnessConfig,
) -> ComparisonOutcome {
    let threshold = config.tom.vdd / 2.0;
    let window = Window::new(0.0, prepared.t_end);
    let mut t_err_dig = 0.0;
    let mut t_err_sig = 0.0;
    let mut bundles = Vec::with_capacity(circuit.outputs().len());
    for (&o, wave) in circuit.outputs().iter().zip(prepared.output_waves) {
        let reference = wave.digitize(threshold);
        let dig = prepared.digital.trace(o).clone();
        let sig = sigmoid_result.trace(o).clone();
        t_err_dig += t_err_digital(&reference, &dig, window);
        t_err_sig += t_err_digital(&reference, &sig.digitize(threshold), window);
        bundles.push(TraceBundle {
            net: circuit.net_name(o).to_string(),
            analog: wave,
            digital: dig,
            sigmoid: sig,
        });
    }

    ComparisonOutcome {
        t_err_digital: t_err_dig,
        t_err_sigmoid: t_err_sig,
        outputs: circuit.outputs().len(),
        wall_analog: prepared.wall_analog,
        wall_digital: prepared.wall_digital,
        wall_sigmoid,
        window,
        bundles,
    }
}

/// Configuration of a multi-seed Monte-Carlo comparison campaign.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent runs (the paper uses 50 per Table I cell).
    pub runs: usize,
    /// Base seed; each run derives its own stream deterministically.
    pub seed: u64,
    /// Worker threads for the runs (`0` = auto-detect, `1` = sequential).
    pub parallelism: usize,
    /// Fleet execution: run every seed's sigmoid simulation in lockstep
    /// through one [`CircuitProgram::execute_fleet`] call instead of one
    /// independent simulation per run. Seeding, stimuli and every `t_err`
    /// are bit-identical to the independent path (property-tested); only
    /// the `wall_sigmoid` fields change — each outcome reports its
    /// amortized share (fleet wall time ÷ runs). Implies sequential
    /// preparation (`parallelism` is ignored).
    pub fleet: bool,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            runs: 5,
            seed: 1,
            parallelism: sigwave::parallel::available_parallelism(),
            fleet: false,
        }
    }
}

impl MonteCarloConfig {
    /// The derived seed of run `r` for a stimulus spec with `transitions`
    /// transitions (the Table I binary's historical formula, kept so cached
    /// results stay comparable).
    #[must_use]
    pub fn run_seed(&self, r: usize, transitions: usize) -> u64 {
        self.seed ^ (r as u64).wrapping_mul(0x9e37_79b9) ^ transitions as u64
    }
}

/// Runs [`compare_circuit`] for `mc.runs` independently seeded stimuli,
/// fanned out across the worker pool; outcomes are returned in run order
/// and the `t_err` results are identical at any parallelism setting (each
/// run owns its RNG).
///
/// **Timing caveat:** each outcome's `wall_*` fields are per-run
/// `Instant`-based measurements. At `parallelism > 1` concurrent runs
/// contend for cores and inflate those timings — set `parallelism: 1`
/// when the wall-clock fields are the quantity of interest (as the
/// `table1` binary does for the paper's `t_sim` columns).
///
/// # Errors
///
/// Returns the lowest-index run's [`HarnessError`] if any run fails.
pub fn compare_circuit_monte_carlo(
    circuit: &Circuit,
    spec: &crate::stimulus::StimulusSpec,
    models: &GateModels,
    delays: &DelayTable,
    config: &HarnessConfig,
    mc: &MonteCarloConfig,
) -> Result<Vec<ComparisonOutcome>, HarnessError> {
    compare_circuit_monte_carlo_cells(
        circuit,
        spec,
        &CellModels::nor_only(models),
        delays,
        config,
        mc,
    )
}

/// The library-cell form of [`compare_circuit_monte_carlo`]: identical
/// scheduling, seeding and timing caveats, with the circuit's gates
/// resolved through `cells` (so native-mapped circuits run directly).
///
/// # Errors
///
/// Returns the lowest-index run's [`HarnessError`] if any run fails.
pub fn compare_circuit_monte_carlo_cells(
    circuit: &Circuit,
    spec: &crate::stimulus::StimulusSpec,
    cells: &CellModels,
    delays: &DelayTable,
    config: &HarnessConfig,
    mc: &MonteCarloConfig,
) -> Result<Vec<ComparisonOutcome>, HarnessError> {
    if mc.fleet {
        return compare_monte_carlo_fleet(circuit, spec, cells, delays, config, mc);
    }
    let runs: Vec<usize> = (0..mc.runs).collect();
    sigwave::parallel::try_par_map(mc.parallelism, &runs, |_, &r| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(mc.run_seed(r, spec.transitions));
        let stimuli = random_stimuli(circuit, spec, &mut rng);
        compare_circuit_cells(circuit, &stimuli, cells, delays, config)
    })
}

/// The fleet form of the Monte-Carlo campaign: prepare every run
/// (analog + digital baselines, per-run RNG seeding unchanged), then run
/// all sigmoid simulations in lockstep through one
/// [`CircuitProgram::execute_fleet`], and finally account each run. Every
/// non-timing field of every outcome is bit-identical to the independent
/// path; `wall_sigmoid` reports each run's amortized share of the one
/// fleet execution.
fn compare_monte_carlo_fleet(
    circuit: &Circuit,
    spec: &crate::stimulus::StimulusSpec,
    cells: &CellModels,
    delays: &DelayTable,
    config: &HarnessConfig,
    mc: &MonteCarloConfig,
) -> Result<Vec<ComparisonOutcome>, HarnessError> {
    if let Some(policy) = config.simd {
        signn::simd::set_policy(policy);
    }
    let mut prepared = Vec::with_capacity(mc.runs);
    for r in 0..mc.runs {
        let mut rng = rand::rngs::StdRng::seed_from_u64(mc.run_seed(r, spec.transitions));
        let stimuli = random_stimuli(circuit, spec, &mut rng);
        prepared.push(prepare_run(circuit, &stimuli, delays, config)?);
    }
    let program = CircuitProgram::compile(
        Arc::new(circuit.clone()),
        Arc::new(cells.clone()),
        config.tom,
    )?;
    let sets: Vec<HashMap<NetId, Arc<SigmoidTrace>>> =
        prepared.iter().map(|p| p.sigmoid_inputs.clone()).collect();
    let mut scratch = FleetScratch::new();
    let start = Instant::now();
    let results = program.execute_fleet_with(&sets, &config.sigmoid_sim, &mut scratch)?;
    let wall_share = start
        .elapsed()
        .checked_div(mc.runs.max(1) as u32)
        .unwrap_or_default();
    Ok(prepared
        .into_iter()
        .zip(results)
        .map(|(p, sigmoid)| finish_run(circuit, p, &sigmoid, wall_share, config))
        .collect())
}

/// The delay-table cell class of a circuit gate. Single-input gates time
/// like inverter chains (the historical rule, which keeps NOR-only
/// circuits bit-identical); multi-input gates resolve to their own class.
/// Kinds with no characterization chain (XOR/XNOR never reach the
/// baseline — the sigmoid validation already rejected them; BUF maps to
/// two inverters in native netlists) use the NOR class like the legacy
/// keying did.
fn delay_class(gate: &sigcircuit::Gate) -> sigchar::ChainGate {
    use sigcircuit::GateKind;
    if gate.inputs.len() == 1 {
        return sigchar::ChainGate::Inverter;
    }
    match gate.kind {
        GateKind::Nand => sigchar::ChainGate::Nand,
        GateKind::And => sigchar::ChainGate::And,
        GateKind::Or => sigchar::ChainGate::Or,
        _ => sigchar::ChainGate::Nor,
    }
}

/// Sanity check used by tests and examples: all three simulators must agree
/// on the final settled levels of every output (boolean correctness).
#[must_use]
pub fn final_levels_agree(outcome: &ComparisonOutcome, vdd: f64) -> bool {
    outcome.bundles.iter().all(|b| {
        let analog = b.analog.values().last().copied().unwrap_or(0.0) > vdd / 2.0;
        let digital = b.digital.final_level().is_high();
        let sigmoid = b.sigmoid.final_level().is_high();
        analog == digital && digital == sigmoid
    })
}

/// Generates per-input random stimuli for a circuit from a spec.
#[must_use]
pub fn random_stimuli(
    circuit: &Circuit,
    spec: &crate::stimulus::StimulusSpec,
    rng: &mut rand::rngs::StdRng,
) -> HashMap<NetId, DigitalTrace> {
    circuit
        .inputs()
        .iter()
        .map(|&i| (i, spec.sample(rng)))
        .collect()
}

/// Holds one input assignment fixed at constant levels (useful to settle a
/// circuit or drive only a subset of inputs).
#[must_use]
pub fn constant_stimuli(circuit: &Circuit, level: Level) -> HashMap<NetId, DigitalTrace> {
    circuit
        .inputs()
        .iter()
        .map(|&i| (i, DigitalTrace::constant(level)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{train_models, PipelineConfig};
    use crate::stimulus::StimulusSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sigchar::CharacterizationConfig;
    use sigchar::PulseSweep;
    use sigtom::AnnTrainConfig;

    fn tiny_pipeline() -> PipelineConfig {
        PipelineConfig {
            characterization: CharacterizationConfig {
                sweep: PulseSweep {
                    min: 10e-12,
                    max: 20e-12,
                    step: 5e-12,
                    t0: 60e-12,
                },
                chain_targets: 3,
                ..CharacterizationConfig::default()
            },
            training: AnnTrainConfig {
                epochs: 250,
                patience: 0,
                ..AnnTrainConfig::default()
            },
            region_margin: Some(4.0),
            ..PipelineConfig::default()
        }
    }

    /// A hand-built outcome with the given `t_err` pair and wall times —
    /// everything `McSummary` reads, nothing more.
    fn outcome(t_dig: f64, t_sig: f64, wall_ms: u64) -> ComparisonOutcome {
        ComparisonOutcome {
            t_err_digital: t_dig,
            t_err_sigmoid: t_sig,
            outputs: 2,
            wall_analog: Duration::from_millis(10 * wall_ms),
            wall_digital: Duration::from_millis(wall_ms),
            wall_sigmoid: Duration::from_millis(2 * wall_ms),
            window: Window::new(0.0, 1e-9),
            bundles: Vec::new(),
        }
    }

    #[test]
    fn mc_summary_aggregates_hand_built_outcomes() {
        // 20 runs with sigmoid t_err 1..=20 ps: mean 10.5, min 1, max 20,
        // p95 = ceil(0.95·20) = 19th sorted value = 19 (nearest rank).
        let outcomes: Vec<ComparisonOutcome> = (1..=20)
            .map(|i| outcome(2e-12 * i as f64, 1e-12 * i as f64, i as u64))
            .collect();
        let s = McSummary::from_outcomes(&outcomes, 546);
        assert_eq!(s.runs, 20);
        assert!((s.sigmoid.mean - 10.5e-12).abs() < 1e-24);
        assert_eq!(s.sigmoid.min, 1e-12);
        assert_eq!(s.sigmoid.max, 20e-12);
        assert_eq!(s.sigmoid.p95, 19e-12);
        assert!((s.digital.mean - 21e-12).abs() < 1e-24);
        assert_eq!(s.digital.p95, 38e-12);
        assert_eq!(s.gates_evaluated, 20 * 546);
        // Wall totals: Σ 1..=20 = 210 ms per unit.
        assert_eq!(s.wall_digital, Duration::from_millis(210));
        assert_eq!(s.wall_sigmoid, Duration::from_millis(420));
        assert_eq!(s.wall_analog, Duration::from_millis(2100));
        // Ratio of means = 0.5 here.
        assert!((s.error_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mc_summary_single_run_and_perfect_baseline() {
        let s = McSummary::from_outcomes(&[outcome(0.0, 0.0, 1)], 6);
        assert_eq!(s.runs, 1);
        assert_eq!(s.sigmoid.p95, 0.0);
        assert_eq!(s.error_ratio(), 1.0);
        let s = McSummary::from_outcomes(&[outcome(0.0, 3e-12, 1)], 6);
        assert_eq!(s.error_ratio(), f64::INFINITY);
    }

    #[test]
    fn fleet_monte_carlo_matches_independent_runs() {
        // The fleet MC parity claim on a real end-to-end campaign: same
        // seeds, same stimuli, bit-identical t_err and traces — only the
        // wall_* fields may differ.
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let circuit = &bench.nor_mapped;
        let trained = train_models(&tiny_pipeline()).unwrap();
        let cells = CellModels::nor_only(&trained.gate_models());
        let delays =
            DelayTable::measure(1..=3, &AnalogOptions::default(), &EngineConfig::default())
                .unwrap();
        let spec = StimulusSpec::new(60e-12, 20e-12, 4);
        let config = HarnessConfig::default();
        let base = MonteCarloConfig {
            runs: 3,
            seed: 99,
            parallelism: 1,
            fleet: false,
        };
        let independent =
            compare_circuit_monte_carlo_cells(circuit, &spec, &cells, &delays, &config, &base)
                .unwrap();
        let fleet = compare_circuit_monte_carlo_cells(
            circuit,
            &spec,
            &cells,
            &delays,
            &config,
            &MonteCarloConfig {
                fleet: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(independent.len(), fleet.len());
        for (r, (a, b)) in independent.iter().zip(&fleet).enumerate() {
            assert_eq!(
                a.t_err_digital.to_bits(),
                b.t_err_digital.to_bits(),
                "run {r}"
            );
            assert_eq!(
                a.t_err_sigmoid.to_bits(),
                b.t_err_sigmoid.to_bits(),
                "run {r}"
            );
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.window, b.window);
            for (ba, bb) in a.bundles.iter().zip(&b.bundles) {
                assert_eq!(ba.net, bb.net);
                assert_eq!(ba.digital, bb.digital);
                assert!(
                    sigtom::traces_bit_identical(&ba.sigmoid, &bb.sigmoid),
                    "run {r} output {} sigmoid trace differs in fleet mode",
                    ba.net
                );
            }
        }
    }

    #[test]
    fn c17_three_way_comparison() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let circuit = &bench.nor_mapped;
        let trained = train_models(&tiny_pipeline()).unwrap();
        let models = trained.gate_models();
        let delays =
            DelayTable::measure(1..=3, &AnalogOptions::default(), &EngineConfig::default())
                .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let spec = StimulusSpec::new(60e-12, 20e-12, 6);
        let stimuli = random_stimuli(circuit, &spec, &mut rng);
        let outcome = compare_circuit(
            circuit,
            &stimuli,
            &models,
            &delays,
            &HarnessConfig::default(),
        )
        .unwrap();

        assert_eq!(outcome.outputs, 2);
        assert!(
            final_levels_agree(&outcome, 0.8),
            "all simulators must agree on settled levels"
        );
        // Errors must be small relative to the window (sane predictions).
        let budget = outcome.window.duration() * outcome.outputs as f64;
        assert!(
            outcome.t_err_sigmoid < 0.25 * budget,
            "sigmoid t_err {:.3e} too large",
            outcome.t_err_sigmoid
        );
        assert!(
            outcome.t_err_digital < 0.25 * budget,
            "digital t_err {:.3e} too large",
            outcome.t_err_digital
        );
        // The analog engine dominates the wall-clock comparison.
        assert!(outcome.wall_analog > outcome.wall_sigmoid);
    }

    #[test]
    fn c17_policies_compare_cleanly_with_one_native_library() {
        // The acceptance parity test: one trained native library drives
        // compare_circuit_cells on BOTH mapped forms of c17 — the
        // NOR-only prototype form and the native 6-NAND2 form — and all
        // three simulators agree on settled levels in each.
        use crate::models::{train_cell_library, LibrarySpec};
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let library = train_cell_library(&LibrarySpec::native(), &tiny_pipeline()).unwrap();
        let cells = library.cell_models();
        let delays =
            DelayTable::measure(1..=3, &AnalogOptions::default(), &EngineConfig::default())
                .unwrap();
        let spec = StimulusSpec::new(60e-12, 20e-12, 4);
        for (policy, circuit) in [
            (sigcircuit::MappingPolicy::NorOnly, &bench.nor_mapped),
            (sigcircuit::MappingPolicy::Native, &bench.native),
        ] {
            let mut rng = StdRng::seed_from_u64(42);
            let stimuli = random_stimuli(circuit, &spec, &mut rng);
            let outcome = compare_circuit_cells(
                circuit,
                &stimuli,
                &cells,
                &delays,
                &HarnessConfig::default(),
            )
            .unwrap();
            assert!(
                final_levels_agree(&outcome, 0.8),
                "{policy}: simulators disagree on settled levels"
            );
            let budget = outcome.window.duration() * outcome.outputs as f64;
            assert!(
                outcome.t_err_sigmoid < 0.25 * budget,
                "{policy}: sigmoid t_err {:.3e} too large",
                outcome.t_err_sigmoid
            );
        }
    }
}
