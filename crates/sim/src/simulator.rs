//! The prototype sigmoidal circuit simulator (Sec. V-A): levelized
//! evaluation of NOR-only circuits with per-variant TOM gate models.
//!
//! The engine schedules the circuit level by level
//! ([`Circuit::levels`]): all gates within one ASAP level are independent,
//! so their pending transfer-function queries are grouped by
//! [`GateModels`] slot and evaluated as one [`predict_batch`] call per
//! (model, round), and the per-gate plan/apply work fans out over the
//! `sigwave::parallel` worker pool. Both knobs live in
//! [`SigmoidSimConfig`]; every setting produces bit-identical traces (see
//! `DESIGN.md` § Levelized batched engine).
//!
//! [`predict_batch`]: sigtom::GateModel::predict_batch

use std::collections::HashMap;
use std::sync::Arc;

use sigcircuit::{Circuit, GateKind, NetId};
use sigtom::{plan_nor, predict_nor, GateModel, NorPlan, TomOptions, TransferQuery};
use sigwave::{Level, SigmoidTrace};

/// The trained gate models the prototype uses: "all elementary gates of the
/// same type are identical … the only exception are NOR gates with fan-out
/// of 2 or more, which use different ANNs than NOR gates with fan-out 1"
/// (Sec. V-A).
#[derive(Debug, Clone)]
pub struct GateModels {
    /// Model for 1-input NOR (inverter) at fan-out 1.
    pub inverter: GateModel,
    /// Model for 1-input NOR at fan-out ≥ 2 (the paper's future-work
    /// extension to wider fan-outs).
    pub inverter_fo2: GateModel,
    /// Model for 2-input NOR with fan-out 1.
    pub nor_fo1: GateModel,
    /// Model for 2-input NOR with fan-out ≥ 2.
    pub nor_fo2: GateModel,
}

/// Number of model slots in [`GateModels`].
pub const MODEL_SLOTS: usize = 4;

impl GateModels {
    /// The slot index a gate of the given arity and fan-out resolves to —
    /// the grouping key the levelized engine batches queries by.
    #[must_use]
    pub fn slot_index(arity: usize, fanout: usize) -> usize {
        match (arity, fanout) {
            (1, 0..=1) => 0,
            (1, _) => 1,
            (_, 0..=1) => 2,
            _ => 3,
        }
    }

    /// The model in a slot (see [`GateModels::slot_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MODEL_SLOTS`.
    #[must_use]
    pub fn by_slot(&self, slot: usize) -> &GateModel {
        match slot {
            0 => &self.inverter,
            1 => &self.inverter_fo2,
            2 => &self.nor_fo1,
            3 => &self.nor_fo2,
            _ => panic!("slot {slot} out of range"),
        }
    }

    /// Selects the model for a gate of the given arity and fan-out.
    #[must_use]
    pub fn select(&self, arity: usize, fanout: usize) -> &GateModel {
        self.by_slot(Self::slot_index(arity, fanout))
    }

    /// Clones one model into all four slots (useful for tests and
    /// analytic-backend benchmarks).
    #[must_use]
    pub fn uniform(model: GateModel) -> Self {
        Self {
            inverter: model.clone(),
            inverter_fo2: model.clone(),
            nor_fo1: model.clone(),
            nor_fo2: model,
        }
    }
}

/// Scheduling knobs of the levelized simulator. Every setting produces
/// bit-identical traces; the knobs trade scheduling overhead against
/// batching and multi-core throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigmoidSimConfig {
    /// Worker threads for the per-level fan-out (`0` = auto-detect the
    /// hardware parallelism, `1` = everything on the calling thread).
    /// Small levels stay sequential regardless — the pool only engages
    /// when a level has enough gates (or a batch enough rows) to amortize
    /// the fan-out.
    pub parallelism: usize,
    /// `true`: group each level's pending queries by model slot and issue
    /// one [`GateModel::predict_batch`] per (model, round). `false`:
    /// evaluate each gate's plan with scalar predictions — together with
    /// `parallelism: 1` this recovers the pre-levelization scalar path.
    pub batch: bool,
}

impl Default for SigmoidSimConfig {
    fn default() -> Self {
        Self {
            parallelism: sigwave::parallel::available_parallelism(),
            batch: true,
        }
    }
}

impl SigmoidSimConfig {
    /// The sequential scalar reference configuration: no batching, no
    /// worker pool — the baseline every other setting must match
    /// bit-for-bit.
    #[must_use]
    pub fn scalar() -> Self {
        Self {
            parallelism: 1,
            batch: false,
        }
    }
}

/// Minimum gates in a level before per-gate work fans out to the pool
/// (below this, thread-scope setup costs more than it saves).
const PAR_MIN_GATES: usize = 8;

/// Minimum queries per worker before a batched inference call is chunked
/// across the pool.
const PAR_MIN_BATCH_ROWS: usize = 32;

/// Error from the sigmoid circuit simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmoidSimError {
    /// A primary input has no stimulus trace.
    MissingStimulus {
        /// Input net name.
        net: String,
    },
    /// The circuit contains a gate the prototype does not support (it
    /// simulates NOR-only circuits, Sec. V-A).
    UnsupportedGate {
        /// Offending gate kind.
        kind: GateKind,
        /// Its arity.
        arity: usize,
    },
}

impl std::fmt::Display for SigmoidSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingStimulus { net } => write!(f, "no stimulus for input {net:?}"),
            Self::UnsupportedGate { kind, arity } => {
                write!(f, "prototype cannot simulate {kind} with {arity} inputs")
            }
        }
    }
}

impl std::error::Error for SigmoidSimError {}

/// Result of a sigmoid circuit simulation: one sigmoidal trace per net.
///
/// Traces are reference-counted: primary-input slots share the caller's
/// stimulus traces instead of cloning them, and nets that no gate drives
/// (possible only in circuits bypassing [`sigcircuit::CircuitBuilder`]
/// validation, e.g. deserialized ones) share a single constant-Low filler
/// trace and are reported by [`SigmoidSimResult::undriven`].
#[derive(Debug, Clone)]
pub struct SigmoidSimResult {
    traces: Vec<Arc<SigmoidTrace>>,
    undriven: Vec<NetId>,
}

impl SigmoidSimResult {
    /// The trace on a net.
    #[must_use]
    pub fn trace(&self, net: NetId) -> &SigmoidTrace {
        &self.traces[net.0]
    }

    /// All traces, indexed by [`NetId`].
    #[must_use]
    pub fn traces(&self) -> &[Arc<SigmoidTrace>] {
        &self.traces
    }

    /// Nets that neither a stimulus nor any gate drives (ascending). Their
    /// [`SigmoidSimResult::trace`] is a fabricated constant-Low — check
    /// here before trusting it.
    #[must_use]
    pub fn undriven(&self) -> &[NetId] {
        &self.undriven
    }

    /// Whether a net's trace is fabricated (see
    /// [`SigmoidSimResult::undriven`]).
    #[must_use]
    pub fn is_undriven(&self, net: NetId) -> bool {
        self.undriven.binary_search(&net).is_ok()
    }
}

/// Simulates a NOR-only circuit with the default scheduling
/// ([`SigmoidSimConfig::default`]: batched, auto parallelism). See
/// [`simulate_sigmoid_with`] for the knobs; results are identical at any
/// setting.
///
/// # Errors
///
/// Returns [`SigmoidSimError`] on missing stimuli or unsupported gates
/// (only NOR with 1–3 inputs is accepted).
pub fn simulate_sigmoid(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
    models: &GateModels,
    options: TomOptions,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    simulate_sigmoid_with(
        circuit,
        stimuli,
        models,
        options,
        &SigmoidSimConfig::default(),
    )
}

/// Simulates a NOR-only circuit: input sigmoid traces propagate level by
/// level ([`Circuit::levels`]) through the TOM transfer functions.
///
/// Within a level every gate is independent, so the engine plans all of
/// them ([`sigtom::plan_nor`]), then repeatedly gathers each plan's next
/// pending query, groups the queries by [`GateModels`] slot, and issues
/// one [`GateModel::predict_batch`] per (model, round) — with the
/// plan/apply work and large inference batches fanned over the
/// `sigwave::parallel` pool per `config`. Traces are bit-identical at
/// every `config` setting, including the sequential scalar reference
/// ([`SigmoidSimConfig::scalar`]).
///
/// # Errors
///
/// Returns [`SigmoidSimError`] on missing stimuli or unsupported gates
/// (only NOR with 1–3 inputs is accepted).
pub fn simulate_sigmoid_with(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
    models: &GateModels,
    options: TomOptions,
    config: &SigmoidSimConfig,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    // Resolve the auto setting once: `available_parallelism` is a syscall
    // and the engine consults the worker count per level and per round.
    let parallelism = sigwave::parallel::resolve_parallelism(config.parallelism);
    let fanouts = circuit.fanout_counts();
    let mut slots: Vec<Option<Arc<SigmoidTrace>>> = vec![None; circuit.net_count()];
    for &input in circuit.inputs() {
        let t = stimuli
            .get(&input)
            .ok_or_else(|| SigmoidSimError::MissingStimulus {
                net: circuit.net_name(input).to_string(),
            })?;
        slots[input.0] = Some(Arc::clone(t));
    }
    for &gi in circuit.topological_gates() {
        let gate = &circuit.gates()[gi];
        if gate.kind != GateKind::Nor || !(1..=3).contains(&gate.inputs.len()) {
            return Err(SigmoidSimError::UnsupportedGate {
                kind: gate.kind,
                arity: gate.inputs.len(),
            });
        }
    }

    // Reusable per-level scratch.
    let mut queries: Vec<TransferQuery> = Vec::new();
    let mut predictions = Vec::new();
    let mut round: Vec<usize> = Vec::new();

    for level in circuit.levels() {
        // Small levels run on the calling thread: the scoped-pool setup
        // would dwarf a handful of gate predictions.
        let level_parallelism = if level.len() >= PAR_MIN_GATES {
            parallelism
        } else {
            1
        };
        if config.batch {
            // Plan every gate of the level (model-independent, fans out).
            let mut plans: Vec<(usize, NetId, NorPlan)> =
                sigwave::parallel::par_map(level_parallelism, level, |_, &gi| {
                    let gate = &circuit.gates()[gi];
                    let ins: Vec<&SigmoidTrace> = gate
                        .inputs
                        .iter()
                        .map(|i| slots[i.0].as_deref().expect("level order"))
                        .collect();
                    let slot = GateModels::slot_index(gate.inputs.len(), fanouts[gate.output.0]);
                    (slot, gate.output, plan_nor(&ins, options))
                });
            // Group the still-pending plans by model slot, then evaluate
            // in rounds: one batched inference per (model, round),
            // scattered back to the plans; exhausted plans drop out of
            // their slot's list so each is polled exactly once per query.
            // Each plan's own query sequence is untouched by the
            // interleaving, so traces match the scalar path bit for bit.
            let mut pending: [Vec<usize>; MODEL_SLOTS] = Default::default();
            for (pi, (slot, _, plan)) in plans.iter().enumerate() {
                if plan.pending() > 0 {
                    pending[*slot].push(pi);
                }
            }
            loop {
                let mut progressed = false;
                for (slot, member) in pending.iter_mut().enumerate() {
                    if member.is_empty() {
                        continue;
                    }
                    progressed = true;
                    queries.clear();
                    for &pi in member.iter() {
                        queries.push(plans[pi].2.next_query().expect("pending plan"));
                    }
                    predict_chunked(
                        models.by_slot(slot),
                        &mut queries,
                        &mut predictions,
                        parallelism,
                    );
                    round.clear();
                    std::mem::swap(member, &mut round);
                    for (&pi, &p) in round.iter().zip(&predictions) {
                        plans[pi].2.apply(p);
                        if plans[pi].2.pending() > 0 {
                            member.push(pi);
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            // Finalize after the plans (which borrow the input slots) are
            // consumed, then publish the level's outputs.
            let finished: Vec<(NetId, SigmoidTrace)> = plans
                .into_iter()
                .map(|(_, output, plan)| (output, plan.into_trace()))
                .collect();
            for (output, trace) in finished {
                slots[output.0] = Some(Arc::new(trace));
            }
        } else {
            // Scalar mode: per-gate one-shot predictions, optionally
            // fanned over the pool (gates within a level are independent).
            let outs: Vec<(NetId, SigmoidTrace)> =
                sigwave::parallel::par_map(level_parallelism, level, |_, &gi| {
                    let gate = &circuit.gates()[gi];
                    let ins: Vec<&SigmoidTrace> = gate
                        .inputs
                        .iter()
                        .map(|i| slots[i.0].as_deref().expect("level order"))
                        .collect();
                    let model = models.select(gate.inputs.len(), fanouts[gate.output.0]);
                    (gate.output, predict_nor(model, &ins, options))
                });
            for (output, trace) in outs {
                slots[output.0] = Some(Arc::new(trace));
            }
        }
    }

    let mut undriven = Vec::new();
    let mut filler: Option<Arc<SigmoidTrace>> = None;
    let traces = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(t) => t,
            None => {
                undriven.push(NetId(i));
                Arc::clone(filler.get_or_insert_with(|| {
                    Arc::new(SigmoidTrace::constant(Level::Low, options.vdd))
                }))
            }
        })
        .collect();
    Ok(SigmoidSimResult { traces, undriven })
}

/// One batched model evaluation: queries are clamped/projected in place
/// (the round buffer doubles as the scratch — no allocation per call),
/// then inference is chunked across the worker pool when the batch is
/// large enough to amortize the fan-out. Chunking only regroups rows;
/// every row's arithmetic is unchanged, so results are identical to the
/// single-call form. `workers` must already be resolved (`>= 1`).
fn predict_chunked(
    model: &GateModel,
    queries: &mut [TransferQuery],
    out: &mut Vec<sigtom::TransferPrediction>,
    workers: usize,
) {
    model.prepare_batch(queries);
    if workers <= 1 || queries.len() < 2 * PAR_MIN_BATCH_ROWS {
        model.transfer.predict_batch(queries, out);
        return;
    }
    let queries: &[TransferQuery] = queries;
    let chunk = queries.len().div_ceil(workers).max(PAR_MIN_BATCH_ROWS);
    let ranges: Vec<std::ops::Range<usize>> = (0..queries.len())
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(queries.len()))
        .collect();
    let parts = sigwave::parallel::par_map(workers, &ranges, |_, range| {
        let mut part = Vec::with_capacity(range.len());
        model
            .transfer
            .predict_batch(&queries[range.clone()], &mut part);
        part
    });
    out.clear();
    out.reserve(queries.len());
    for part in parts {
        out.extend(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::CircuitBuilder;
    use sigtom::{TransferFunction, TransferPrediction};
    use sigwave::{Sigmoid, VDD_DEFAULT};

    struct Fixed(f64);
    impl TransferFunction for Fixed {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            TransferPrediction {
                a_out: -q.a_in.signum() * 14.0,
                delay: self.0,
            }
        }
        fn backend_name(&self) -> &'static str {
            "fixed"
        }
    }

    fn models(inv_d: f64, fo1_d: f64, fo2_d: f64) -> GateModels {
        GateModels {
            inverter: GateModel::new(Arc::new(Fixed(inv_d))),
            inverter_fo2: GateModel::new(Arc::new(Fixed(inv_d))),
            nor_fo1: GateModel::new(Arc::new(Fixed(fo1_d))),
            nor_fo2: GateModel::new(Arc::new(Fixed(fo2_d))),
        }
    }

    fn rising_input() -> Arc<SigmoidTrace> {
        Arc::new(
            SigmoidTrace::from_transitions(
                Level::Low,
                vec![Sigmoid::rising(12.0, 1.0)],
                VDD_DEFAULT,
            )
            .unwrap(),
        )
    }

    fn constant(level: Level) -> Arc<SigmoidTrace> {
        Arc::new(SigmoidTrace::constant(level, VDD_DEFAULT))
    }

    #[test]
    fn inverter_chain_accumulates_delay() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        let n2 = b.add_gate(GateKind::Nor, &[n1], "n2");
        b.mark_output(n2);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        let out = res.trace(n2);
        assert_eq!(out.len(), 1);
        assert!((out.transitions()[0].b - 1.10).abs() < 1e-9);
        assert!(out.transitions()[0].is_rising());
        assert_eq!(out.initial(), Level::Low);
        assert!(res.undriven().is_empty());
    }

    #[test]
    fn fanout_selects_model() {
        // One NOR2 drives two loads: it must use the FO2 model (delay 0.2).
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let z = b.add_input("z");
        let n1 = b.add_gate(GateKind::Nor, &[a, z], "n1");
        let l1 = b.add_gate(GateKind::Nor, &[n1], "l1");
        let l2 = b.add_gate(GateKind::Nor, &[n1], "l2");
        b.mark_output(l1);
        b.mark_output(l2);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        stim.insert(z, constant(Level::Low));
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        // n1 falls at 1.0 + 0.2 (FO2 model).
        assert!((res.trace(n1).transitions()[0].b - 1.2).abs() < 1e-9);
        // loads are single-input NORs -> inverter model, +0.05.
        assert!((res.trace(l1).transitions()[0].b - 1.25).abs() < 1e-9);
    }

    #[test]
    fn unsupported_gate_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Inv, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        let err =
            simulate_sigmoid(&c, &stim, &models(0.1, 0.1, 0.1), TomOptions::default()).unwrap_err();
        assert!(matches!(err, SigmoidSimError::UnsupportedGate { .. }));
    }

    #[test]
    fn missing_stimulus_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let err = simulate_sigmoid(
            &c,
            &HashMap::new(),
            &models(0.1, 0.1, 0.1),
            TomOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SigmoidSimError::MissingStimulus { .. }));
    }

    #[test]
    fn c17_nor_mapped_simulates() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let c = &bench.nor_mapped;
        let mut stim = HashMap::new();
        for (i, &input) in c.inputs().iter().enumerate() {
            let t = if i == 2 {
                rising_input()
            } else {
                constant(Level::Low)
            };
            stim.insert(input, t);
        }
        let res =
            simulate_sigmoid(c, &stim, &models(0.05, 0.08, 0.12), TomOptions::default()).unwrap();
        // Final levels must match the boolean evaluation.
        let mut bits = vec![false; 5];
        bits[2] = true;
        let expect = c.eval(&bits);
        for (o, e) in c.outputs().iter().zip(expect) {
            assert_eq!(
                res.trace(*o).final_level().is_high(),
                e,
                "output {} disagrees with boolean evaluation",
                c.net_name(*o)
            );
        }
    }

    #[test]
    fn input_traces_are_shared_not_cloned() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let stimulus = rising_input();
        let mut stim = HashMap::new();
        stim.insert(a, Arc::clone(&stimulus));
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        // The result's input slot is the same allocation as the stimulus.
        assert!(Arc::ptr_eq(&res.traces()[a.0], &stimulus));
    }

    #[test]
    fn all_configs_bit_identical_on_c17() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let c = &bench.nor_mapped;
        let mut stim = HashMap::new();
        for (i, &input) in c.inputs().iter().enumerate() {
            let t = if i % 2 == 0 {
                Arc::new(
                    SigmoidTrace::from_transitions(
                        Level::Low,
                        vec![
                            Sigmoid::rising(12.0, 1.0 + 0.3 * i as f64),
                            Sigmoid::falling(9.0, 2.0 + 0.4 * i as f64),
                            Sigmoid::rising(15.0, 4.0 + 0.2 * i as f64),
                        ],
                        VDD_DEFAULT,
                    )
                    .unwrap(),
                )
            } else {
                constant(Level::Low)
            };
            stim.insert(input, t);
        }
        let m = models(0.05, 0.08, 0.12);
        let opts = TomOptions::default();
        let reference =
            simulate_sigmoid_with(c, &stim, &m, opts, &SigmoidSimConfig::scalar()).unwrap();
        for config in [
            SigmoidSimConfig {
                parallelism: 1,
                batch: true,
            },
            SigmoidSimConfig {
                parallelism: 4,
                batch: true,
            },
            SigmoidSimConfig {
                parallelism: 4,
                batch: false,
            },
            SigmoidSimConfig {
                parallelism: 0,
                batch: true,
            },
        ] {
            let got = simulate_sigmoid_with(c, &stim, &m, opts, &config).unwrap();
            for net in 0..c.net_count() {
                assert_eq!(
                    got.trace(NetId(net)),
                    reference.trace(NetId(net)),
                    "net {net} differs under {config:?}"
                );
            }
        }
    }

    /// A transfer with history (`T`) and slope dependence so interleaving
    /// bugs would actually change the numbers.
    struct HistoryTransfer;
    impl TransferFunction for HistoryTransfer {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            let degradation = 1.0 - (-q.t / 0.25).exp();
            TransferPrediction {
                a_out: -q.a_in.signum() * (10.0 + 0.2 * q.a_prev_out.abs()) * degradation.max(0.04),
                delay: 0.05 + 0.01 * (-q.t / 0.4).exp() + 0.3 / q.a_in.abs().max(1.0),
            }
        }
        fn backend_name(&self) -> &'static str {
            "history"
        }
    }

    proptest::proptest! {
        #[test]
        fn batched_and_parallel_match_scalar_on_random_dags(seed in 0u64..u64::MAX) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

            // Random NOR-only DAG: 1–4 primary inputs, up to 14 gates of
            // arity 1–3 reading any earlier net (so fan-outs of 0, 1 and
            // ≥ 2 all occur and exercise every model slot).
            let mut b = CircuitBuilder::new();
            let n_inputs = rng.gen_range(1..5usize);
            let mut nets: Vec<NetId> =
                (0..n_inputs).map(|i| b.add_input(&format!("i{i}"))).collect();
            let n_gates = rng.gen_range(1..15usize);
            for g in 0..n_gates {
                let arity = rng.gen_range(1..4usize);
                let mut ins: Vec<NetId> = Vec::new();
                for _ in 0..arity {
                    let pick = nets[rng.gen_range(0..nets.len())];
                    if !ins.contains(&pick) {
                        ins.push(pick);
                    }
                }
                let out = b.add_gate(GateKind::Nor, &ins, &format!("g{g}"));
                nets.push(out);
            }
            b.mark_output(*nets.last().expect("at least one net"));
            let c = b.build().expect("random DAG is valid");

            // Random stimuli: 0–5 alternating transitions per input with
            // random slopes, spacings and initial levels.
            let mut stim = HashMap::new();
            for &input in c.inputs() {
                let initial = if rng.gen::<bool>() { Level::High } else { Level::Low };
                let mut rising = !initial.is_high();
                let mut t = 0.0;
                let mut transitions = Vec::new();
                for _ in 0..rng.gen_range(0..6usize) {
                    t += rng.gen_range(0.03..1.5f64);
                    let a = rng.gen_range(5.0..25.0f64);
                    transitions.push(if rising {
                        Sigmoid::rising(a, t)
                    } else {
                        Sigmoid::falling(a, t)
                    });
                    rising = !rising;
                }
                let trace =
                    SigmoidTrace::from_transitions(initial, transitions, VDD_DEFAULT).unwrap();
                stim.insert(input, Arc::new(trace));
            }

            // Distinct per-slot models so a slot mix-up changes results.
            let m = GateModels {
                inverter: GateModel::new(Arc::new(HistoryTransfer)),
                inverter_fo2: GateModel::new(Arc::new(Fixed(0.09))),
                nor_fo1: GateModel::new(Arc::new(HistoryTransfer)),
                nor_fo2: GateModel::new(Arc::new(Fixed(0.13))),
            };
            let opts = TomOptions::default();
            let reference =
                simulate_sigmoid_with(&c, &stim, &m, opts, &SigmoidSimConfig::scalar()).unwrap();
            for config in [
                SigmoidSimConfig { parallelism: 1, batch: true },
                SigmoidSimConfig { parallelism: 3, batch: true },
                SigmoidSimConfig { parallelism: 3, batch: false },
            ] {
                let got = simulate_sigmoid_with(&c, &stim, &m, opts, &config).unwrap();
                for net in 0..c.net_count() {
                    proptest::prop_assert_eq!(
                        got.trace(NetId(net)),
                        reference.trace(NetId(net)),
                        "net {} differs under {:?} (seed {})",
                        net,
                        config,
                        seed
                    );
                }
            }
        }
    }

    #[test]
    fn undriven_nets_reported() {
        // Deserialization bypasses CircuitBuilder validation, so a net can
        // exist that nothing drives; the simulator must say so instead of
        // silently backfilling.
        let json = r#"{
            "net_names": ["a", "y", "ghost"],
            "inputs": [[0]],
            "outputs": [[1]],
            "gates": [{"kind": "Nor", "inputs": [[0]], "output": [1]}],
            "topo": [0],
            "levels": [[0]]
        }"#;
        let c: Circuit = serde_json::from_str(json).expect("circuit JSON");
        let ghost = c.find_net("ghost").unwrap();
        let mut stim = HashMap::new();
        stim.insert(c.find_net("a").unwrap(), rising_input());
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        assert_eq!(res.undriven(), &[ghost]);
        assert!(res.is_undriven(ghost));
        assert!(!res.is_undriven(c.find_net("y").unwrap()));
        // The fabricated trace is the documented constant-Low filler.
        assert_eq!(res.trace(ghost).initial(), Level::Low);
        assert!(res.trace(ghost).is_empty());
    }
}
