//! The prototype sigmoidal circuit simulator (Sec. V-A): topological
//! evaluation of NOR-only circuits with per-variant TOM gate models.

use std::collections::HashMap;

use sigcircuit::{Circuit, GateKind, NetId};
use sigtom::{predict_nor, GateModel, TomOptions};
use sigwave::{Level, SigmoidTrace};

/// The trained gate models the prototype uses: "all elementary gates of the
/// same type are identical … the only exception are NOR gates with fan-out
/// of 2 or more, which use different ANNs than NOR gates with fan-out 1"
/// (Sec. V-A).
#[derive(Debug, Clone)]
pub struct GateModels {
    /// Model for 1-input NOR (inverter) at fan-out 1.
    pub inverter: GateModel,
    /// Model for 1-input NOR at fan-out ≥ 2 (the paper's future-work
    /// extension to wider fan-outs).
    pub inverter_fo2: GateModel,
    /// Model for 2-input NOR with fan-out 1.
    pub nor_fo1: GateModel,
    /// Model for 2-input NOR with fan-out ≥ 2.
    pub nor_fo2: GateModel,
}

impl GateModels {
    /// Selects the model for a gate of the given arity and fan-out.
    #[must_use]
    pub fn select(&self, arity: usize, fanout: usize) -> &GateModel {
        match (arity, fanout) {
            (1, 0..=1) => &self.inverter,
            (1, _) => &self.inverter_fo2,
            (_, 0..=1) => &self.nor_fo1,
            _ => &self.nor_fo2,
        }
    }

    /// Clones one model into all four slots (useful for tests and
    /// analytic-backend benchmarks).
    #[must_use]
    pub fn uniform(model: GateModel) -> Self {
        Self {
            inverter: model.clone(),
            inverter_fo2: model.clone(),
            nor_fo1: model.clone(),
            nor_fo2: model,
        }
    }
}

/// Error from the sigmoid circuit simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmoidSimError {
    /// A primary input has no stimulus trace.
    MissingStimulus {
        /// Input net name.
        net: String,
    },
    /// The circuit contains a gate the prototype does not support (it
    /// simulates NOR-only circuits, Sec. V-A).
    UnsupportedGate {
        /// Offending gate kind.
        kind: GateKind,
        /// Its arity.
        arity: usize,
    },
}

impl std::fmt::Display for SigmoidSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingStimulus { net } => write!(f, "no stimulus for input {net:?}"),
            Self::UnsupportedGate { kind, arity } => {
                write!(f, "prototype cannot simulate {kind} with {arity} inputs")
            }
        }
    }
}

impl std::error::Error for SigmoidSimError {}

/// Result of a sigmoid circuit simulation: one sigmoidal trace per net.
#[derive(Debug, Clone)]
pub struct SigmoidSimResult {
    traces: Vec<SigmoidTrace>,
}

impl SigmoidSimResult {
    /// The trace on a net.
    #[must_use]
    pub fn trace(&self, net: NetId) -> &SigmoidTrace {
        &self.traces[net.0]
    }

    /// All traces, indexed by [`NetId`].
    #[must_use]
    pub fn traces(&self) -> &[SigmoidTrace] {
        &self.traces
    }
}

/// Simulates a NOR-only circuit: input sigmoid traces propagate gate by
/// gate in topological order through the TOM transfer functions.
///
/// # Errors
///
/// Returns [`SigmoidSimError`] on missing stimuli or unsupported gates
/// (only NOR with 1–3 inputs is accepted).
pub fn simulate_sigmoid(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, SigmoidTrace>,
    models: &GateModels,
    options: TomOptions,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    let fanouts = circuit.fanout_counts();
    let mut traces: Vec<Option<SigmoidTrace>> = vec![None; circuit.net_count()];
    for &input in circuit.inputs() {
        let t = stimuli
            .get(&input)
            .ok_or_else(|| SigmoidSimError::MissingStimulus {
                net: circuit.net_name(input).to_string(),
            })?;
        traces[input.0] = Some(t.clone());
    }
    for &gi in circuit.topological_gates() {
        let gate = &circuit.gates()[gi];
        if gate.kind != GateKind::Nor || gate.inputs.len() > 3 {
            return Err(SigmoidSimError::UnsupportedGate {
                kind: gate.kind,
                arity: gate.inputs.len(),
            });
        }
        let ins: Vec<&SigmoidTrace> = gate
            .inputs
            .iter()
            .map(|i| traces[i.0].as_ref().expect("topological order"))
            .collect();
        let model = models.select(gate.inputs.len(), fanouts[gate.output.0]);
        let out = predict_nor(model, &ins, options);
        traces[gate.output.0] = Some(out);
    }
    Ok(SigmoidSimResult {
        traces: traces
            .into_iter()
            .map(|t| t.unwrap_or_else(|| SigmoidTrace::constant(Level::Low, options.vdd)))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::CircuitBuilder;
    use sigtom::{TransferFunction, TransferPrediction, TransferQuery};
    use sigwave::{Sigmoid, VDD_DEFAULT};
    use std::sync::Arc;

    struct Fixed(f64);
    impl TransferFunction for Fixed {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            TransferPrediction {
                a_out: -q.a_in.signum() * 14.0,
                delay: self.0,
            }
        }
        fn backend_name(&self) -> &'static str {
            "fixed"
        }
    }

    fn models(inv_d: f64, fo1_d: f64, fo2_d: f64) -> GateModels {
        GateModels {
            inverter: GateModel::new(Arc::new(Fixed(inv_d))),
            inverter_fo2: GateModel::new(Arc::new(Fixed(inv_d))),
            nor_fo1: GateModel::new(Arc::new(Fixed(fo1_d))),
            nor_fo2: GateModel::new(Arc::new(Fixed(fo2_d))),
        }
    }

    fn rising_input() -> SigmoidTrace {
        SigmoidTrace::from_transitions(Level::Low, vec![Sigmoid::rising(12.0, 1.0)], VDD_DEFAULT)
            .unwrap()
    }

    #[test]
    fn inverter_chain_accumulates_delay() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        let n2 = b.add_gate(GateKind::Nor, &[n1], "n2");
        b.mark_output(n2);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        let out = res.trace(n2);
        assert_eq!(out.len(), 1);
        assert!((out.transitions()[0].b - 1.10).abs() < 1e-9);
        assert!(out.transitions()[0].is_rising());
        assert_eq!(out.initial(), Level::Low);
    }

    #[test]
    fn fanout_selects_model() {
        // One NOR2 drives two loads: it must use the FO2 model (delay 0.2).
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let z = b.add_input("z");
        let n1 = b.add_gate(GateKind::Nor, &[a, z], "n1");
        let l1 = b.add_gate(GateKind::Nor, &[n1], "l1");
        let l2 = b.add_gate(GateKind::Nor, &[n1], "l2");
        b.mark_output(l1);
        b.mark_output(l2);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        stim.insert(z, SigmoidTrace::constant(Level::Low, VDD_DEFAULT));
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        // n1 falls at 1.0 + 0.2 (FO2 model).
        assert!((res.trace(n1).transitions()[0].b - 1.2).abs() < 1e-9);
        // loads are single-input NORs -> inverter model, +0.05.
        assert!((res.trace(l1).transitions()[0].b - 1.25).abs() < 1e-9);
    }

    #[test]
    fn unsupported_gate_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Inv, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        let err =
            simulate_sigmoid(&c, &stim, &models(0.1, 0.1, 0.1), TomOptions::default()).unwrap_err();
        assert!(matches!(err, SigmoidSimError::UnsupportedGate { .. }));
    }

    #[test]
    fn missing_stimulus_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let err = simulate_sigmoid(
            &c,
            &HashMap::new(),
            &models(0.1, 0.1, 0.1),
            TomOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SigmoidSimError::MissingStimulus { .. }));
    }

    #[test]
    fn c17_nor_mapped_simulates() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let c = &bench.nor_mapped;
        let mut stim = HashMap::new();
        for (i, &input) in c.inputs().iter().enumerate() {
            let t = if i == 2 {
                rising_input()
            } else {
                SigmoidTrace::constant(Level::Low, VDD_DEFAULT)
            };
            stim.insert(input, t);
        }
        let res =
            simulate_sigmoid(c, &stim, &models(0.05, 0.08, 0.12), TomOptions::default()).unwrap();
        // Final levels must match the boolean evaluation.
        let mut bits = vec![false; 5];
        bits[2] = true;
        let expect = c.eval(&bits);
        for (o, e) in c.outputs().iter().zip(expect) {
            assert_eq!(
                res.trace(*o).final_level().is_high(),
                e,
                "output {} disagrees with boolean evaluation",
                c.net_name(*o)
            );
        }
    }
}
