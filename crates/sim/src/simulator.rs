//! The sigmoidal circuit simulator (Sec. V-A, extended): levelized
//! evaluation of library-cell circuits with per-cell TOM gate models.
//!
//! The engine schedules the circuit level by level
//! ([`Circuit::levels`]): all gates within one ASAP level are independent,
//! so their pending transfer-function queries are grouped by
//! [`CellModels`] slot and evaluated as one [`predict_batch`] call per
//! (model, round), and the per-gate plan/apply work fans out over the
//! `sigwave::parallel` worker pool. Both knobs live in
//! [`SigmoidSimConfig`]; every setting produces bit-identical traces (see
//! `docs/architecture.md`).
//!
//! Two cell sets are built in: the paper's NOR-only four-slot
//! [`GateModels`] (inverter/NOR at fan-out 1/2) and the extensible
//! [`CellModels`] the native library produces (adds NAND2/AND2/OR2/INV;
//! see `docs/cell-libraries.md`).
//!
//! The engine is split compile/execute: [`CircuitProgram::compile`] does
//! every circuit-dependent step once (validation, slot resolution, plan
//! templates) and [`CircuitProgram::execute`] binds stimuli against the
//! resident tables with a reusable [`SimScratch`]; the fused entry points
//! below compile-and-execute per call and stay bit-identical.
//!
//! On top of the split sits the **event-driven incremental engine**:
//! [`CircuitProgram::open_session`] captures a full execution in a
//! resident [`IncrementalState`], and [`CircuitProgram::execute_delta`]
//! re-simulates only the cone affected by a batch of [`StimulusEdit`]s —
//! a level-ordered dirty-set walk that stops wherever a recomputed trace
//! is bit-identical to the committed one (see `docs/architecture.md`
//! § Incremental engine).
//!
//! [`predict_batch`]: sigtom::GateModel::predict_batch

use std::collections::HashMap;
use std::sync::Arc;

use sigcircuit::{Circuit, GateKind, NetId};
use sigtom::{
    apply_plan, traces_bit_identical, CellFunction, GateModel, GatePlan, PlanScratch, PlanTemplate,
    TomOptions, TransferPrediction, TransferQuery,
};
use sigwave::{Level, SigmoidTrace};

/// The trained gate models the prototype uses: "all elementary gates of the
/// same type are identical … the only exception are NOR gates with fan-out
/// of 2 or more, which use different ANNs than NOR gates with fan-out 1"
/// (Sec. V-A).
#[derive(Debug, Clone)]
pub struct GateModels {
    /// Model for 1-input NOR (inverter) at fan-out 1.
    pub inverter: GateModel,
    /// Model for 1-input NOR at fan-out ≥ 2 (the paper's future-work
    /// extension to wider fan-outs).
    pub inverter_fo2: GateModel,
    /// Model for 2-input NOR with fan-out 1.
    pub nor_fo1: GateModel,
    /// Model for 2-input NOR with fan-out ≥ 2.
    pub nor_fo2: GateModel,
}

/// Number of model slots in [`GateModels`].
pub const MODEL_SLOTS: usize = 4;

impl GateModels {
    /// The slot index a gate of the given arity and fan-out resolves to —
    /// the grouping key the levelized engine batches queries by.
    #[must_use]
    pub fn slot_index(arity: usize, fanout: usize) -> usize {
        match (arity, fanout) {
            (1, 0..=1) => 0,
            (1, _) => 1,
            (_, 0..=1) => 2,
            _ => 3,
        }
    }

    /// The model in a slot (see [`GateModels::slot_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MODEL_SLOTS`.
    #[must_use]
    pub fn by_slot(&self, slot: usize) -> &GateModel {
        match slot {
            0 => &self.inverter,
            1 => &self.inverter_fo2,
            2 => &self.nor_fo1,
            3 => &self.nor_fo2,
            _ => panic!("slot {slot} out of range"),
        }
    }

    /// Selects the model for a gate of the given arity and fan-out.
    #[must_use]
    pub fn select(&self, arity: usize, fanout: usize) -> &GateModel {
        self.by_slot(Self::slot_index(arity, fanout))
    }

    /// Clones one model into all four slots (useful for tests and
    /// analytic-backend benchmarks).
    #[must_use]
    pub fn uniform(model: GateModel) -> Self {
        Self {
            inverter: model.clone(),
            inverter_fo2: model.clone(),
            nor_fo1: model.clone(),
            nor_fo2: model,
        }
    }
}

/// An extensible runtime cell-model set: the dynamic-slot generalization
/// of the fixed four-slot [`GateModels`].
///
/// Each slot holds one [`GateModel`]; the index maps a gate's
/// `(kind, single-input?, fan-out ≥ 2?)` signature to its slot. One slot
/// may serve several signatures (the inverter cell answers both
/// `GateKind::Inv` and single-input `GateKind::Nor`). The levelized
/// engine batches queries per slot, so the slot count — not the
/// signature count — bounds the number of `predict_batch` calls per
/// round.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sigsim::CellModels;
/// use sigcircuit::GateKind;
/// use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};
///
/// struct Fixed;
/// impl TransferFunction for Fixed {
///     fn predict(&self, q: TransferQuery) -> TransferPrediction {
///         TransferPrediction { a_out: -q.a_in.signum() * 14.0, delay: 0.05 }
///     }
///     fn backend_name(&self) -> &'static str { "fixed" }
/// }
///
/// let mut cells = CellModels::empty("demo");
/// let slot = cells.push(GateModel::new(Arc::new(Fixed)));
/// cells.bind(slot, GateKind::Nand, false, false); // NAND2 at fan-out 1
/// assert_eq!(cells.slot_for(GateKind::Nand, 2, 1), Some(slot));
/// assert_eq!(cells.slot_for(GateKind::Nand, 2, 3), None); // FO2 unbound
/// ```
#[derive(Debug, Clone)]
pub struct CellModels {
    name: String,
    models: Vec<GateModel>,
    index: HashMap<(GateKind, bool, bool), usize>,
}

impl CellModels {
    /// An empty set with no slots. Invariant: every slot referenced by
    /// [`CellModels::bind`] must come from [`CellModels::push`] on the
    /// same set.
    #[must_use]
    pub fn empty(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            models: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The library name these models came from (`nor-only`, `native`, or
    /// a custom name) — reported by services so results are
    /// self-describing.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a model slot and returns its index.
    pub fn push(&mut self, model: GateModel) -> usize {
        self.models.push(model);
        self.models.len() - 1
    }

    /// Routes gates with the `(kind, single_input, fo2)` signature to a
    /// slot. Binding the same signature twice keeps the latest slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not returned by [`CellModels::push`].
    pub fn bind(&mut self, slot: usize, kind: GateKind, single_input: bool, fo2: bool) {
        assert!(slot < self.models.len(), "slot {slot} was never pushed");
        self.index.insert((kind, single_input, fo2), slot);
    }

    /// Number of model slots (the engine's batching width).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.models.len()
    }

    /// The model in a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slots()`.
    #[must_use]
    pub fn by_slot(&self, slot: usize) -> &GateModel {
        &self.models[slot]
    }

    /// The slot a gate of this kind/arity/fan-out resolves to, or `None`
    /// when the set has no model for it (the gate is unsimulable with
    /// these models). Arity legality is checked here too: NOR accepts
    /// 1–3 inputs, NAND/AND/OR exactly 2, INV/BUF exactly 1; XOR/XNOR
    /// always resolve to `None` — they must be decomposed by a
    /// [`sigcircuit::MappingPolicy`] first.
    #[must_use]
    pub fn slot_for(&self, kind: GateKind, arity: usize, fanout: usize) -> Option<usize> {
        let arity_ok = match kind {
            GateKind::Nor => (1..=3).contains(&arity),
            GateKind::Inv | GateKind::Buf => arity == 1,
            GateKind::Nand | GateKind::And | GateKind::Or => arity == 2,
            GateKind::Xor | GateKind::Xnor => false,
        };
        if !arity_ok {
            return None;
        }
        self.index.get(&(kind, arity == 1, fanout >= 2)).copied()
    }

    /// The Algorithm-1 cell function of a gate kind, or `None` for kinds
    /// the plan layer cannot drive (XOR/XNOR).
    #[must_use]
    pub fn cell_function(kind: GateKind) -> Option<CellFunction> {
        match kind {
            GateKind::Inv => Some(CellFunction::Inv),
            GateKind::Buf => Some(CellFunction::Buf),
            GateKind::Nor => Some(CellFunction::Nor),
            GateKind::Or => Some(CellFunction::Or),
            GateKind::Nand => Some(CellFunction::Nand),
            GateKind::And => Some(CellFunction::And),
            GateKind::Xor | GateKind::Xnor => None,
        }
    }

    /// One model cloned into a slot per native cell kind (INV, NOR,
    /// NAND, AND, OR), each bound at both fan-out classes, with the
    /// inverter slot also answering single-input NORs — the
    /// [`GateModels::uniform`] analogue for the native cell set, used by
    /// tests and analytic-backend benchmarks. The binding table matches
    /// [`crate::CellLibrary::cell_models`], so a drift between the two
    /// is caught by the shared test suite instead of surfacing as a
    /// bench-only `UnsupportedGate`.
    #[must_use]
    pub fn uniform(name: impl Into<String>, model: GateModel) -> Self {
        let mut cells = Self::empty(name);
        for kind in [
            GateKind::Inv,
            GateKind::Nor,
            GateKind::Nand,
            GateKind::And,
            GateKind::Or,
        ] {
            let slot = cells.push(model.clone());
            let single = kind == GateKind::Inv;
            cells.bind(slot, kind, single, false);
            cells.bind(slot, kind, single, true);
            if single {
                cells.bind(slot, GateKind::Nor, true, false);
                cells.bind(slot, GateKind::Nor, true, true);
            }
        }
        cells
    }

    /// The NOR-only prototype set: the four [`GateModels`] slots bound to
    /// `GateKind::Nor` signatures exactly as the original simulator
    /// resolved them (single-input NORs use the inverter models; nothing
    /// else — not even `GateKind::Inv` — is bound, preserving the
    /// prototype's strictness).
    #[must_use]
    pub fn nor_only(models: &GateModels) -> Self {
        let mut cells = Self::empty("nor-only");
        let inv = cells.push(models.inverter.clone());
        let inv2 = cells.push(models.inverter_fo2.clone());
        let fo1 = cells.push(models.nor_fo1.clone());
        let fo2 = cells.push(models.nor_fo2.clone());
        cells.bind(inv, GateKind::Nor, true, false);
        cells.bind(inv2, GateKind::Nor, true, true);
        cells.bind(fo1, GateKind::Nor, false, false);
        cells.bind(fo2, GateKind::Nor, false, true);
        cells
    }
}

impl From<&GateModels> for CellModels {
    fn from(models: &GateModels) -> Self {
        Self::nor_only(models)
    }
}

/// Scheduling knobs of the levelized simulator. Every setting produces
/// bit-identical traces; the knobs trade scheduling overhead against
/// batching and multi-core throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigmoidSimConfig {
    /// Worker threads for the per-level fan-out (`0` = auto-detect the
    /// hardware parallelism, `1` = everything on the calling thread).
    /// Small levels stay sequential regardless — the pool only engages
    /// when a level has enough gates (or a batch enough rows) to amortize
    /// the fan-out.
    pub parallelism: usize,
    /// `true`: group each level's pending queries by model slot and issue
    /// one [`GateModel::predict_batch`] per (model, round). `false`:
    /// evaluate each gate's plan with scalar predictions — together with
    /// `parallelism: 1` this recovers the pre-levelization scalar path.
    pub batch: bool,
}

impl Default for SigmoidSimConfig {
    fn default() -> Self {
        Self {
            parallelism: sigwave::parallel::available_parallelism(),
            batch: true,
        }
    }
}

impl SigmoidSimConfig {
    /// The sequential scalar reference configuration: no batching, no
    /// worker pool — the baseline every other setting must match
    /// bit-for-bit.
    #[must_use]
    pub fn scalar() -> Self {
        Self {
            parallelism: 1,
            batch: false,
        }
    }
}

/// Minimum gates in a level before per-gate work fans out to the pool
/// (below this, thread-scope setup costs more than it saves).
const PAR_MIN_GATES: usize = 8;

/// Minimum queries per worker before a batched inference call is chunked
/// across the pool.
const PAR_MIN_BATCH_ROWS: usize = 32;

/// Error from the sigmoid circuit simulator. Unsupported gates are
/// rejected by an upfront validation pass over the whole circuit —
/// *before* any level is simulated — so a bad netlist fails with this
/// named error instead of part-way through (XOR/XNOR, which parse but
/// have no library cell, land here unless a [`sigcircuit::MappingPolicy`]
/// decomposed them first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmoidSimError {
    /// A primary input has no stimulus trace.
    MissingStimulus {
        /// Input net name.
        net: String,
    },
    /// The circuit contains a gate the selected cell models cannot
    /// simulate (NOR-only models accept NOR with 1–3 inputs; the native
    /// library adds INV/NAND2/AND2/OR2; XOR/XNOR are never simulable
    /// directly).
    UnsupportedGate {
        /// Offending gate kind.
        kind: GateKind,
        /// Its arity.
        arity: usize,
    },
    /// A [`StimulusEdit`] targets a net that is not a primary input —
    /// only stimuli can be edited; internal nets are derived state.
    EditNotAnInput {
        /// Offending net name.
        net: String,
    },
}

impl std::fmt::Display for SigmoidSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingStimulus { net } => write!(f, "no stimulus for input {net:?}"),
            Self::UnsupportedGate { kind, arity } => {
                write!(
                    f,
                    "no cell model can simulate {kind} with {arity} inputs \
                     (map the circuit to a supported cell set first)"
                )
            }
            Self::EditNotAnInput { net } => {
                write!(f, "delta edit targets non-input net {net:?}")
            }
        }
    }
}

impl std::error::Error for SigmoidSimError {}

/// Result of a sigmoid circuit simulation: one sigmoidal trace per net.
///
/// Traces are reference-counted: primary-input slots share the caller's
/// stimulus traces instead of cloning them, and nets that no gate drives
/// (possible only in circuits bypassing [`sigcircuit::CircuitBuilder`]
/// validation, e.g. deserialized ones) share a single constant-Low filler
/// trace and are reported by [`SigmoidSimResult::undriven`].
#[derive(Debug, Clone)]
pub struct SigmoidSimResult {
    traces: Vec<Arc<SigmoidTrace>>,
    undriven: Vec<NetId>,
}

impl SigmoidSimResult {
    /// The trace on a net.
    #[must_use]
    pub fn trace(&self, net: NetId) -> &SigmoidTrace {
        &self.traces[net.0]
    }

    /// All traces, indexed by [`NetId`].
    #[must_use]
    pub fn traces(&self) -> &[Arc<SigmoidTrace>] {
        &self.traces
    }

    /// Nets that neither a stimulus nor any gate drives (ascending). Their
    /// [`SigmoidSimResult::trace`] is a fabricated constant-Low — check
    /// here before trusting it.
    #[must_use]
    pub fn undriven(&self) -> &[NetId] {
        &self.undriven
    }

    /// Whether a net's trace is fabricated (see
    /// [`SigmoidSimResult::undriven`]).
    #[must_use]
    pub fn is_undriven(&self, net: NetId) -> bool {
        self.undriven.binary_search(&net).is_ok()
    }
}

/// Simulates a NOR-only circuit with the default scheduling
/// ([`SigmoidSimConfig::default`]: batched, auto parallelism). See
/// [`simulate_sigmoid_with`] for the knobs; results are identical at any
/// setting.
///
/// # Errors
///
/// Returns [`SigmoidSimError`] on missing stimuli or unsupported gates
/// (only NOR with 1–3 inputs is accepted).
pub fn simulate_sigmoid(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
    models: &GateModels,
    options: TomOptions,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    simulate_sigmoid_with(
        circuit,
        stimuli,
        models,
        options,
        &SigmoidSimConfig::default(),
    )
}

/// Simulates a NOR-only circuit with the four-slot prototype models —
/// a thin wrapper binding `models` as a [`CellModels`] set and calling
/// [`simulate_cells_with`]; behaviour (including the rejection of
/// anything but 1–3-input NOR gates) is unchanged from the prototype.
///
/// # Errors
///
/// Returns [`SigmoidSimError`] on missing stimuli or unsupported gates
/// (only NOR with 1–3 inputs is accepted).
pub fn simulate_sigmoid_with(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
    models: &GateModels,
    options: TomOptions,
    config: &SigmoidSimConfig,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    simulate_cells_with(
        circuit,
        stimuli,
        &CellModels::nor_only(models),
        options,
        config,
    )
}

/// Simulates a library-cell circuit: input sigmoid traces propagate level
/// by level ([`Circuit::levels`]) through the TOM transfer functions.
///
/// This is the **fused** compatibility form of the compile/execute split:
/// it compiles the circuit's program tables ([`CircuitProgram`] holds the
/// same tables resident) and executes them once with a fresh
/// [`SimScratch`]. Traces are bit-identical to driving a compiled
/// [`CircuitProgram::execute`] — and to every `config` setting, including
/// the sequential scalar reference ([`SigmoidSimConfig::scalar`]).
///
/// # Errors
///
/// Returns [`SigmoidSimError`] on missing stimuli, or — from the upfront
/// validation pass, before any gate is evaluated — when a gate has no
/// slot in `cells` (wrong kind, arity, or an XOR/XNOR that was never
/// decomposed).
pub fn simulate_cells_with(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
    cells: &CellModels,
    options: TomOptions,
    config: &SigmoidSimConfig,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    let tables = ProgramTables::compile(circuit, cells)?;
    let mut scratch = SimScratch::new();
    execute_program(
        circuit,
        cells,
        &tables,
        options,
        stimuli,
        config,
        &mut scratch,
    )
}

/// The largest input count any [`CellModels`] slot accepts (3-input NOR);
/// lets the sequential executor gather a gate's input traces on the stack
/// instead of allocating a `Vec` per gate per run.
const MAX_CELL_ARITY: usize = 3;

/// The circuit-dependent tables of a compiled program: everything the
/// executor needs that is derivable from `(circuit, cells)` alone —
/// resolved model slots and plan templates per gate. Compiling also *is*
/// the upfront validation pass: a circuit with an unsupported gate never
/// produces tables.
#[derive(Debug)]
struct ProgramTables {
    /// Per gate index: the [`CellModels`] slot its queries batch into.
    slots: Vec<usize>,
    /// Per gate index: the circuit-only plan template
    /// ([`sigtom::PlanTemplate`]: cell function, arity, masking level).
    templates: Vec<PlanTemplate>,
}

impl ProgramTables {
    fn compile(circuit: &Circuit, cells: &CellModels) -> Result<Self, SigmoidSimError> {
        let fanouts = circuit.fanout_counts();
        let unsupported = |gate: &sigcircuit::Gate| SigmoidSimError::UnsupportedGate {
            kind: gate.kind,
            arity: gate.inputs.len(),
        };
        let mut slots = Vec::with_capacity(circuit.gates().len());
        let mut templates = Vec::with_capacity(circuit.gates().len());
        for gate in circuit.gates() {
            let slot = cells
                .slot_for(gate.kind, gate.inputs.len(), fanouts[gate.output.0])
                .ok_or_else(|| unsupported(gate))?;
            let func = CellModels::cell_function(gate.kind).ok_or_else(|| unsupported(gate))?;
            slots.push(slot);
            templates.push(PlanTemplate::new(func, gate.inputs.len()));
        }
        Ok(Self { slots, templates })
    }
}

/// A reusable execution arena: every scheduling buffer the level loop
/// needs — the per-net trace slots, the per-slot pending lists, the
/// query/prediction batch matrices the round loop ping-pongs between, and
/// the plan-merge scratch. One instance serves any number of sequential
/// [`CircuitProgram::execute`] calls (of any program); buffers grow to
/// the largest run seen and stay allocated, so steady-state execution
/// allocates only the output traces themselves (plus one small per-level
/// plan list, whose elements borrow the arena and cannot outlive a
/// level).
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Per-net resolved traces (the executor's working set).
    nets: Vec<Option<Arc<SigmoidTrace>>>,
    /// Gathered queries of one (slot, round) batch.
    queries: Vec<TransferQuery>,
    /// The matching predictions, scattered back to the plans.
    predictions: Vec<TransferPrediction>,
    /// Plan indices of the round being applied (swapped with the pending
    /// list so exhausted plans drop out without reallocation).
    round: Vec<usize>,
    /// Per-slot pending plan indices.
    pending: Vec<Vec<usize>>,
    /// Multi-input transition-merge buffers for sequential planning.
    plan: PlanScratch,
    /// Duplicate-gate elimination table of the current level (see
    /// [`GateMemo`]).
    memo: GateMemo,
}

/// The duplicate-gate elimination table: maps a gate's *evaluation
/// identity* — model slot, cell function, and the exact input traces (by
/// `Arc` pointer, valid while the level holds them alive) — to the output
/// net of the first gate in the level with that identity. Gate evaluation
/// is deterministic in (model, input traces, options), so later gates with
/// the same identity must produce a bit-identical trace and simply share
/// the first gate's `Arc` instead of re-planning and re-predicting.
/// NOR-mapped netlists duplicate gates across fan-out branches heavily
/// (ISCAS c1355 carries 535 duplicates among 2172 gates), so this removes
/// a quarter of all inference work there. Input order is part of the key
/// (no commutativity assumed), and the table never outlives a (run, level)
/// — pointers cannot be recycled while the memoized traces are alive.
type GateMemo = HashMap<(usize, CellFunction, [usize; MAX_CELL_ARITY]), NetId>;

/// The `GateMemo` key of one bound gate: unused input lanes pad with
/// `usize::MAX`, which no live `Arc` pointer equals, so arity is encoded
/// implicitly.
fn memo_key(
    slot: usize,
    function: CellFunction,
    inputs: &[NetId],
    nets: &[Option<Arc<SigmoidTrace>>],
    base: usize,
) -> (usize, CellFunction, [usize; MAX_CELL_ARITY]) {
    let mut ptrs = [usize::MAX; MAX_CELL_ARITY];
    for (lane, i) in inputs.iter().enumerate() {
        ptrs[lane] = nets[base + i.0]
            .as_ref()
            .map(|t| Arc::as_ptr(t) as usize)
            .expect("level order");
    }
    (slot, function, ptrs)
}

impl SimScratch {
    /// An empty arena; buffers are sized lazily by the first execution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-net slot capacity currently retained — the arena's
    /// dominant allocation, which grows to the largest circuit executed.
    /// Pools use this to drop arenas grown by a one-off huge netlist
    /// instead of pinning their memory forever.
    #[must_use]
    pub fn net_capacity(&self) -> usize {
        self.nets.capacity()
    }
}

/// The execution arena of [`CircuitProgram::execute_fleet`]: the fleet
/// counterpart of [`SimScratch`], holding the run-major per-run/per-net
/// trace matrix plus the shared batch buffers all runs' queries merge
/// into. Like `SimScratch`, one instance serves any number of sequential
/// fleet executions (of any program and any fleet width) and buffers grow
/// to the largest fleet seen.
///
/// The arena also keeps two monotone counters the service layer reports:
/// total stimulus sets executed ([`FleetScratch::runs`]) and total query
/// rows issued through merged batches ([`FleetScratch::rows_merged`]).
#[derive(Debug, Default)]
pub struct FleetScratch {
    /// Run-major per-run/per-net resolved traces
    /// (`runs × net_count`, run `r` occupies `r*net_count ..`).
    nets: Vec<Option<Arc<SigmoidTrace>>>,
    /// Gathered queries of one (slot, round) batch — rows from *all*
    /// runs of the fleet.
    queries: Vec<TransferQuery>,
    /// The matching predictions, scattered back to the plans.
    predictions: Vec<TransferPrediction>,
    /// Plan indices of the round being applied.
    round: Vec<usize>,
    /// Per-slot pending plan indices (indices into the fleet-wide,
    /// run-major plan list of the current level).
    pending: Vec<Vec<usize>>,
    /// Multi-input transition-merge buffers for sequential planning.
    plan: PlanScratch,
    /// Duplicate-gate elimination table of the current (run, level) (see
    /// [`GateMemo`]).
    memo: GateMemo,
    /// Cumulative stimulus sets executed through this arena.
    runs: u64,
    /// Cumulative query rows issued through merged batches.
    rows_merged: u64,
}

impl FleetScratch {
    /// An empty arena; buffers are sized lazily by the first execution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total stimulus sets executed through this arena (across all
    /// [`CircuitProgram::execute_fleet`] calls).
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total query rows issued through merged per-slot batches — the
    /// quantity that amortizes per-batch overhead; with a fleet of `K`
    /// runs each inference call sees up to `K×` the rows of a solo run.
    #[must_use]
    pub fn rows_merged(&self) -> u64 {
        self.rows_merged
    }

    /// The per-net slot capacity currently retained (the fleet analogue
    /// of [`SimScratch::net_capacity`]: `runs × net_count` of the largest
    /// fleet executed).
    #[must_use]
    pub fn net_capacity(&self) -> usize {
        self.nets.capacity()
    }

    /// Resets the cumulative [`FleetScratch::runs`] /
    /// [`FleetScratch::rows_merged`] counters to zero. The counters are
    /// monotone over the arena's lifetime, so a pool that hands one arena
    /// to unrelated requests must reset on acquire or per-request
    /// accounting over-reports (the buffers themselves are untouched —
    /// capacity reuse is the point of pooling).
    pub fn reset_counters(&mut self) {
        self.runs = 0;
        self.rows_merged = 0;
    }
}

/// Engine latency histograms (nanoseconds) plus the merged inference
/// batch width per round. Span names mirror the operations: `program.*`
/// for whole calls, `execute.*` for intra-execution phases (see
/// `docs/observability.md` for the taxonomy).
static COMPILE_HIST: sigobs::Hist = sigobs::Hist::new("engine.compile");
static EXECUTE_HIST: sigobs::Hist = sigobs::Hist::new("engine.execute");
static FLEET_HIST: sigobs::Hist = sigobs::Hist::new("engine.execute_fleet");
static DELTA_HIST: sigobs::Hist = sigobs::Hist::new("engine.execute_delta");
static ROUND_ROWS: sigobs::Hist = sigobs::Hist::new("engine.round_rows");

/// A compiled circuit program: the compile-once / execute-many form of
/// the levelized engine.
///
/// [`CircuitProgram::compile`] performs all circuit-dependent work
/// exactly once — slot and cell-function resolution (including the
/// [`SigmoidSimError::UnsupportedGate`] rejection of bad netlists),
/// fan-out classification, and per-gate [`sigtom::PlanTemplate`]
/// construction. [`CircuitProgram::execute`] then binds a stimulus to the
/// resident tables; with a reused [`SimScratch`] the steady state does no
/// per-level buffer allocation. Results are bit-identical to the fused
/// [`simulate_cells_with`] entry point at every scheduling setting
/// (property-tested on random DAGs).
///
/// The program shares its circuit and cell models (`Arc`), so a resident
/// service can cache programs and hand one instance to many concurrent
/// requests (each with its own scratch).
pub struct CircuitProgram {
    circuit: Arc<Circuit>,
    cells: Arc<CellModels>,
    options: TomOptions,
    tables: ProgramTables,
}

impl std::fmt::Debug for CircuitProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitProgram")
            .field("gates", &self.tables.slots.len())
            .field("cells", &self.cells.name())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl CircuitProgram {
    /// Compiles a circuit against a cell-model set: validates every gate
    /// (slot + cell function, with the named [`SigmoidSimError`] on
    /// unsupported kinds/arities) and precomputes the per-gate tables the
    /// executor reads. The compiled program is immutable and shareable
    /// across threads.
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::UnsupportedGate`] when a gate resolves
    /// to no slot in `cells` — the same upfront rejection the fused entry
    /// points perform per call.
    pub fn compile(
        circuit: Arc<Circuit>,
        cells: Arc<CellModels>,
        options: TomOptions,
    ) -> Result<Self, SigmoidSimError> {
        let sw = sigobs::stopwatch();
        let tables = ProgramTables::compile(&circuit, &cells)?;
        sw.observe_span(&COMPILE_HIST, "program.compile");
        Ok(Self {
            circuit,
            cells,
            options,
            tables,
        })
    }

    /// The compiled circuit.
    #[must_use]
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The cell models the program was compiled against.
    #[must_use]
    pub fn cells(&self) -> &Arc<CellModels> {
        &self.cells
    }

    /// The TOM options baked into the program (part of any cache key).
    #[must_use]
    pub fn options(&self) -> TomOptions {
        self.options
    }

    /// Executes the program with the default scheduling
    /// ([`SigmoidSimConfig::default`]). See [`CircuitProgram::execute_with`].
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::MissingStimulus`] when an input net has
    /// no stimulus trace (the only stimulus-dependent failure — gate
    /// validation already happened at compile time).
    pub fn execute(
        &self,
        stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
        scratch: &mut SimScratch,
    ) -> Result<SigmoidSimResult, SigmoidSimError> {
        self.execute_with(stimuli, &SigmoidSimConfig::default(), scratch)
    }

    /// Executes the program against one stimulus set: the
    /// stimulus-dependent half of the engine only — template binding,
    /// transition queries and model inference — scheduled per `config`
    /// exactly like [`simulate_cells_with`], with every buffer drawn from
    /// `scratch`.
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::MissingStimulus`] when an input net has
    /// no stimulus trace.
    pub fn execute_with(
        &self,
        stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
        config: &SigmoidSimConfig,
        scratch: &mut SimScratch,
    ) -> Result<SigmoidSimResult, SigmoidSimError> {
        let sw = sigobs::stopwatch();
        let result = execute_program(
            &self.circuit,
            &self.cells,
            &self.tables,
            self.options,
            stimuli,
            config,
            scratch,
        );
        if result.is_ok() {
            sw.observe_span(&EXECUTE_HIST, "program.execute");
        }
        result
    }

    /// Executes the program against `K` stimulus sets in lockstep with the
    /// default scheduling. See [`CircuitProgram::execute_fleet_with`].
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::MissingStimulus`] when any run's input
    /// net has no stimulus trace.
    pub fn execute_fleet(
        &self,
        stimuli: &[HashMap<NetId, Arc<SigmoidTrace>>],
        scratch: &mut FleetScratch,
    ) -> Result<Vec<SigmoidSimResult>, SigmoidSimError> {
        self.execute_fleet_with(stimuli, &SigmoidSimConfig::default(), scratch)
    }

    /// Executes the program against `K` stimulus sets **in lockstep**: per
    /// level, the plan templates of *all* runs are bound and their pending
    /// queries merged per model slot, so each inference round issues one
    /// wide batch of up to `K×` the rows of a solo execution — the
    /// fleet form that amortizes per-batch overhead across a Monte-Carlo
    /// campaign or a batched service request.
    ///
    /// Every run's result is **bit-identical** to an independent
    /// [`CircuitProgram::execute_with`] of the same stimulus set
    /// (property-tested on random DAGs): each plan's own query/prediction
    /// sequence is unchanged by the merge, and batched inference is
    /// row-independent — regrouping rows never changes a row's arithmetic
    /// (the same contract the levelized engine already relies on for
    /// round interleaving and chunked parallel inference).
    ///
    /// Results are returned in run order. An empty `stimuli` slice returns
    /// an empty vector.
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::MissingStimulus`] when any run's input
    /// net has no stimulus trace — unlike the independent path, the whole
    /// fleet fails upfront (no partial results).
    pub fn execute_fleet_with(
        &self,
        stimuli: &[HashMap<NetId, Arc<SigmoidTrace>>],
        config: &SigmoidSimConfig,
        scratch: &mut FleetScratch,
    ) -> Result<Vec<SigmoidSimResult>, SigmoidSimError> {
        let k = stimuli.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        let sw = sigobs::stopwatch();
        let circuit = &*self.circuit;
        let cells = &*self.cells;
        let tables = &self.tables;
        let options = self.options;
        let parallelism = sigwave::parallel::resolve_parallelism(config.parallelism);
        let nc = circuit.net_count();
        let FleetScratch {
            nets,
            queries,
            predictions,
            round,
            pending,
            plan,
            memo,
            runs,
            rows_merged,
        } = scratch;
        nets.clear();
        nets.resize(k * nc, None);
        for member in pending.iter_mut() {
            member.clear();
        }
        pending.resize_with(cells.slots(), Vec::new);
        for (r, stim) in stimuli.iter().enumerate() {
            for &input in circuit.inputs() {
                let t = stim
                    .get(&input)
                    .ok_or_else(|| SigmoidSimError::MissingStimulus {
                        net: circuit.net_name(input).to_string(),
                    })?;
                nets[r * nc + input.0] = Some(Arc::clone(t));
            }
        }

        for level in circuit.levels() {
            // Bind the level's templates for every run (run-major, so a
            // plan index identifies both the run and the gate). Plans
            // borrow the input traces out of the fleet net matrix;
            // outputs are published only after the level's plans are
            // consumed, exactly like the solo executor.
            let mut bind_span = sigobs::span("execute.bind");
            let mut plans: Vec<(usize, usize, NetId, GatePlan)> =
                Vec::with_capacity(k * level.len());
            // Duplicate gates (same slot, function, and input traces —
            // fan-out replicas in NOR-mapped netlists) evaluate once per
            // run; the rest alias the first copy's output `Arc` after the
            // level finalizes. See [`GateMemo`] for the soundness
            // argument.
            let mut aliases: Vec<(usize, NetId, NetId)> = Vec::new();
            for r in 0..k {
                let base = r * nc;
                memo.clear();
                for &gi in level {
                    let gate = &circuit.gates()[gi];
                    let slot = tables.slots[gi];
                    let template = &tables.templates[gi];
                    let key = memo_key(slot, template.function(), &gate.inputs, nets, base);
                    match memo.entry(key) {
                        std::collections::hash_map::Entry::Occupied(first) => {
                            aliases.push((r, gate.output, *first.get()));
                            continue;
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(gate.output);
                        }
                    }
                    let first = nets[base + gate.inputs[0].0]
                        .as_deref()
                        .expect("level order");
                    let mut ins: [&SigmoidTrace; MAX_CELL_ARITY] = [first; MAX_CELL_ARITY];
                    for (j, i) in gate.inputs.iter().enumerate().skip(1) {
                        ins[j] = nets[base + i.0].as_deref().expect("level order");
                    }
                    plans.push((
                        slot,
                        r,
                        gate.output,
                        template.bind_with(&ins[..gate.inputs.len()], options, plan),
                    ));
                }
            }
            bind_span.set_arg("plans", plans.len() as u64);
            drop(bind_span);
            // The solo round loop, over the fleet-wide plan list: pending
            // plans group by slot *across runs*, so one predict call per
            // (model, round) serves the whole fleet. Each plan still
            // contributes exactly one query per round, in its own order.
            for (pi, (slot, _, _, plan)) in plans.iter().enumerate() {
                if plan.pending() > 0 {
                    pending[*slot].push(pi);
                }
            }
            loop {
                let mut progressed = false;
                for (slot, member) in pending.iter_mut().enumerate() {
                    if member.is_empty() {
                        continue;
                    }
                    progressed = true;
                    queries.clear();
                    for &pi in member.iter() {
                        queries.push(plans[pi].3.next_query().expect("pending plan"));
                    }
                    *rows_merged += queries.len() as u64;
                    ROUND_ROWS.record(queries.len() as u64);
                    let mut infer_span = sigobs::span("execute.infer");
                    infer_span.set_arg("rows", queries.len() as u64);
                    predict_chunked(cells.by_slot(slot), queries, predictions, parallelism);
                    drop(infer_span);
                    round.clear();
                    std::mem::swap(member, round);
                    for (&pi, &p) in round.iter().zip(predictions.iter()) {
                        plans[pi].3.apply(p);
                        if plans[pi].3.pending() > 0 {
                            member.push(pi);
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            let finalize_span = sigobs::span("execute.finalize");
            let finished: Vec<(usize, NetId, SigmoidTrace)> = plans
                .into_iter()
                .map(|(_, r, output, plan)| (r, output, plan.into_trace()))
                .collect();
            for (r, output, trace) in finished {
                nets[r * nc + output.0] = Some(Arc::new(trace));
            }
            for (r, output, source) in aliases {
                let shared = nets[r * nc + source.0].clone().expect("memoized gate ran");
                nets[r * nc + output.0] = Some(shared);
            }
            drop(finalize_span);
        }

        *runs += k as u64;
        let mut results = Vec::with_capacity(k);
        let mut filler: Option<Arc<SigmoidTrace>> = None;
        for r in 0..k {
            let mut undriven = Vec::new();
            let traces = nets[r * nc..(r + 1) * nc]
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| match slot.take() {
                    Some(t) => t,
                    None => {
                        undriven.push(NetId(i));
                        Arc::clone(filler.get_or_insert_with(|| {
                            Arc::new(SigmoidTrace::constant(Level::Low, options.vdd))
                        }))
                    }
                })
                .collect();
            results.push(SigmoidSimResult { traces, undriven });
        }
        sw.observe_span(&FLEET_HIST, "program.execute_fleet");
        Ok(results)
    }

    /// Opens an incremental session: runs one full execution of `stimuli`
    /// (bit-identical to [`CircuitProgram::execute`]) and captures the
    /// committed per-net traces in a resident [`IncrementalState`] that
    /// subsequent [`CircuitProgram::execute_delta`] calls mutate in
    /// place.
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::MissingStimulus`] when an input net has
    /// no stimulus trace (same contract as a full execution).
    pub fn open_session(
        &self,
        stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
        scratch: &mut SimScratch,
    ) -> Result<IncrementalState, SigmoidSimError> {
        let baseline = self.execute(stimuli, scratch)?;
        let circuit = &self.circuit;
        let mut level_of = vec![0usize; circuit.gates().len()];
        for (li, level) in circuit.levels().iter().enumerate() {
            for &gi in level {
                level_of[gi] = li;
            }
        }
        let mut is_input = vec![false; circuit.net_count()];
        for &input in circuit.inputs() {
            is_input[input.0] = true;
        }
        Ok(IncrementalState {
            circuit: Arc::clone(circuit),
            committed: baseline.traces,
            undriven: baseline.undriven,
            level_of,
            is_input,
            dirty_levels: vec![Vec::new(); circuit.levels().len()],
            gate_marked: vec![false; circuit.gates().len()],
            plan: PlanScratch::default(),
            deltas: 0,
            gates_reeval: 0,
            last_reeval: 0,
        })
    }

    /// Applies a batch of stimulus edits to a session and re-simulates
    /// **only the affected cone**: the event-driven half of the engine.
    ///
    /// Dirtiness seeds from each edited input's consumer gates
    /// ([`Circuit::fanouts`]) and the scheduler walks the dirty set in
    /// ASAP-level order, re-planning and re-predicting each dirty gate
    /// with the compiled [`sigtom::PlanTemplate`] (the exact per-gate
    /// computation of the scalar executor). Propagation **stops** at any
    /// gate whose recomputed output trace is bit-identical
    /// ([`sigtom::traces_bit_identical`] — exact `f64` bits, not a
    /// tolerance) to the committed one, so the result is provably equal
    /// to a cold full [`CircuitProgram::execute`] of the final stimuli:
    /// every skipped gate's inputs are unchanged bit-for-bit, and gate
    /// evaluation is deterministic in its inputs.
    ///
    /// Edits whose trace is bit-identical to the committed stimulus are
    /// no-ops (they seed no dirtiness); an empty `changed` slice returns
    /// the committed result unchanged. The returned
    /// [`SigmoidSimResult`] shares the state's traces (`Arc` clones).
    ///
    /// # Errors
    ///
    /// Returns [`SigmoidSimError::EditNotAnInput`] when an edit targets a
    /// net that is not a primary input; the state is untouched in that
    /// case (validation happens before any commit).
    ///
    /// # Panics
    ///
    /// Panics if `state` was opened from a program compiled for a
    /// different circuit (the session pins the circuit identity).
    pub fn execute_delta(
        &self,
        state: &mut IncrementalState,
        changed: &[StimulusEdit],
    ) -> Result<SigmoidSimResult, SigmoidSimError> {
        assert!(
            Arc::ptr_eq(&self.circuit, &state.circuit),
            "IncrementalState belongs to a program compiled for a different circuit"
        );
        let circuit = &*self.circuit;
        for edit in changed {
            if !state.is_input[edit.net.0] {
                return Err(SigmoidSimError::EditNotAnInput {
                    net: circuit.net_name(edit.net).to_string(),
                });
            }
        }
        let sw = sigobs::stopwatch();
        state.deltas += 1;
        state.last_reeval = 0;
        let fanouts = circuit.fanouts();
        for edit in changed {
            if traces_bit_identical(&edit.trace, &state.committed[edit.net.0]) {
                continue;
            }
            state.committed[edit.net.0] = Arc::clone(&edit.trace);
            for &gi in &fanouts[edit.net.0] {
                state.mark_dirty(gi);
            }
        }
        for li in 0..state.dirty_levels.len() {
            let mut gates = std::mem::take(&mut state.dirty_levels[li]);
            // Dirt from several sources lands in marking order; sort so
            // the walk (and the reeval counters) are deterministic.
            gates.sort_unstable();
            for gi in gates.drain(..) {
                state.gate_marked[gi] = false;
                let gate = &circuit.gates()[gi];
                let first = &*state.committed[gate.inputs[0].0];
                let mut ins: [&SigmoidTrace; MAX_CELL_ARITY] = [first; MAX_CELL_ARITY];
                for (k, i) in gate.inputs.iter().enumerate().skip(1) {
                    ins[k] = &state.committed[i.0];
                }
                let plan = self.tables.templates[gi].bind_with(
                    &ins[..gate.inputs.len()],
                    self.options,
                    &mut state.plan,
                );
                let trace = apply_plan(plan, self.cells.by_slot(self.tables.slots[gi]));
                state.gates_reeval += 1;
                state.last_reeval += 1;
                if traces_bit_identical(&trace, &state.committed[gate.output.0]) {
                    // Converged: the output did not change a single bit,
                    // so every downstream gate would recompute exactly
                    // its committed trace — propagation stops here.
                    continue;
                }
                state.committed[gate.output.0] = Arc::new(trace);
                for &consumer in &fanouts[gate.output.0] {
                    state.mark_dirty(consumer);
                }
            }
            // Hand the (drained) buffer back so its capacity is reused.
            state.dirty_levels[li] = gates;
        }
        sw.observe_span(&DELTA_HIST, "program.execute_delta");
        Ok(state.result())
    }
}

/// One stimulus edit of an incremental session: replaces the committed
/// trace on a primary-input net (see [`CircuitProgram::execute_delta`]).
#[derive(Debug, Clone)]
pub struct StimulusEdit {
    /// The primary-input net whose stimulus changes.
    pub net: NetId,
    /// The replacement trace (shared, never cloned).
    pub trace: Arc<SigmoidTrace>,
}

/// The resident state of one incremental simulation session: the last
/// committed per-net traces (stimuli *and* gate outputs) of one
/// [`CircuitProgram`], plus the dirty-set bookkeeping and counters of the
/// event-driven scheduler.
///
/// Created by [`CircuitProgram::open_session`]; mutated in place by
/// [`CircuitProgram::execute_delta`]. The invariant maintained across any
/// edit sequence: the committed traces equal a cold full
/// [`CircuitProgram::execute`] of the committed stimuli, bit for bit.
#[derive(Debug)]
pub struct IncrementalState {
    /// The circuit this state was opened for (identity-checked by
    /// `execute_delta`).
    circuit: Arc<Circuit>,
    /// Committed per-net traces, indexed by [`NetId`]. Always fully
    /// populated (undriven nets hold the constant-Low filler).
    committed: Vec<Arc<SigmoidTrace>>,
    /// Undriven nets of the baseline execution (stimulus-independent).
    undriven: Vec<NetId>,
    /// Gate index → ASAP level index (the scheduler's priority key).
    level_of: Vec<usize>,
    /// Per-net: is it a primary input (the only editable nets)?
    is_input: Vec<bool>,
    /// Per-level dirty gate lists (the level-ordered work queue).
    dirty_levels: Vec<Vec<usize>>,
    /// Per-gate dedup flag for the dirty set.
    gate_marked: Vec<bool>,
    /// Reusable transition-merge buffers for per-gate re-planning.
    plan: PlanScratch,
    /// Completed `execute_delta` calls.
    deltas: u64,
    /// Cumulative gates re-evaluated across all deltas.
    gates_reeval: u64,
    /// Gates re-evaluated by the most recent delta.
    last_reeval: u64,
}

impl IncrementalState {
    /// The circuit this session simulates.
    #[must_use]
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The committed simulation result (`Arc`-shared with the state; the
    /// same value the last [`CircuitProgram::execute_delta`] returned).
    #[must_use]
    pub fn result(&self) -> SigmoidSimResult {
        SigmoidSimResult {
            traces: self.committed.clone(),
            undriven: self.undriven.clone(),
        }
    }

    /// Completed [`CircuitProgram::execute_delta`] calls on this session.
    #[must_use]
    pub fn deltas(&self) -> u64 {
        self.deltas
    }

    /// Cumulative gates re-evaluated across all deltas — the honest cost
    /// of the session (a full execution costs `gates().len()` per run).
    #[must_use]
    pub fn gates_reeval(&self) -> u64 {
        self.gates_reeval
    }

    /// Gates re-evaluated by the most recent delta (`0` when every edit
    /// was bit-identical to the committed stimulus).
    #[must_use]
    pub fn last_reeval(&self) -> u64 {
        self.last_reeval
    }

    /// Marks a gate dirty, deduplicating via the per-gate flag.
    fn mark_dirty(&mut self, gi: usize) {
        if !self.gate_marked[gi] {
            self.gate_marked[gi] = true;
            self.dirty_levels[self.level_of[gi]].push(gi);
        }
    }
}

/// The executor shared by [`CircuitProgram::execute_with`] and the fused
/// [`simulate_cells_with`]: binds one stimulus set to compiled tables.
///
/// Within a level every gate is independent, so the engine binds all of
/// their plan templates, then repeatedly gathers each plan's next pending
/// query, groups the queries by [`CellModels`] slot, and issues one
/// [`GateModel::predict_batch`] per (model, round) — with the bind/apply
/// work and large inference batches fanned over the `sigwave::parallel`
/// pool per `config`. Traces are bit-identical at every `config` setting.
fn execute_program(
    circuit: &Circuit,
    cells: &CellModels,
    tables: &ProgramTables,
    options: TomOptions,
    stimuli: &HashMap<NetId, Arc<SigmoidTrace>>,
    config: &SigmoidSimConfig,
    scratch: &mut SimScratch,
) -> Result<SigmoidSimResult, SigmoidSimError> {
    // Resolve the auto setting once: `available_parallelism` is a syscall
    // and the engine consults the worker count per level and per round.
    let parallelism = sigwave::parallel::resolve_parallelism(config.parallelism);
    // Reset the arena to this program's exact sizes (idempotent for
    // repeated executions of the same program; defensive against a
    // previous run that died mid-level).
    let SimScratch {
        nets,
        queries,
        predictions,
        round,
        pending,
        plan,
        memo,
    } = scratch;
    nets.clear();
    nets.resize(circuit.net_count(), None);
    for member in pending.iter_mut() {
        member.clear();
    }
    pending.resize_with(cells.slots(), Vec::new);
    for &input in circuit.inputs() {
        let t = stimuli
            .get(&input)
            .ok_or_else(|| SigmoidSimError::MissingStimulus {
                net: circuit.net_name(input).to_string(),
            })?;
        nets[input.0] = Some(Arc::clone(t));
    }

    for level in circuit.levels() {
        // Small levels run on the calling thread: the scoped-pool setup
        // would dwarf a handful of gate predictions.
        let level_parallelism = if level.len() >= PAR_MIN_GATES {
            parallelism
        } else {
            1
        };
        if config.batch {
            // Bind every template of the level (model-independent). The
            // parallel form fans gates over the pool with per-gate merge
            // buffers; the sequential form reuses the arena's.
            // Duplicate gates (same slot, function, and input traces)
            // evaluate once; the rest alias the first copy's output `Arc`
            // after the level finalizes. See [`GateMemo`]. The parallel
            // bind skips the table — fanning the binds out already hides
            // the duplicate work, and results are bit-identical either
            // way (gate evaluation is deterministic in its inputs).
            let mut bind_span = sigobs::span("execute.bind");
            let mut aliases: Vec<(NetId, NetId)> = Vec::new();
            let mut plans: Vec<(usize, NetId, GatePlan)> = if level_parallelism > 1 {
                sigwave::parallel::par_map(level_parallelism, level, |_, &gi| {
                    let gate = &circuit.gates()[gi];
                    let ins: Vec<&SigmoidTrace> = gate
                        .inputs
                        .iter()
                        .map(|i| nets[i.0].as_deref().expect("level order"))
                        .collect();
                    (
                        tables.slots[gi],
                        gate.output,
                        tables.templates[gi].bind(&ins, options),
                    )
                })
            } else {
                memo.clear();
                let mut out = Vec::with_capacity(level.len());
                for &gi in level {
                    let gate = &circuit.gates()[gi];
                    let slot = tables.slots[gi];
                    let template = &tables.templates[gi];
                    let key = memo_key(slot, template.function(), &gate.inputs, nets, 0);
                    match memo.entry(key) {
                        std::collections::hash_map::Entry::Occupied(first) => {
                            aliases.push((gate.output, *first.get()));
                            continue;
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(gate.output);
                        }
                    }
                    // Compiled arities are <= MAX_CELL_ARITY (slot
                    // resolution enforces it), so the gather fits a
                    // fixed stack buffer.
                    let first = nets[gate.inputs[0].0].as_deref().expect("level order");
                    let mut ins: [&SigmoidTrace; MAX_CELL_ARITY] = [first; MAX_CELL_ARITY];
                    for (k, i) in gate.inputs.iter().enumerate().skip(1) {
                        ins[k] = nets[i.0].as_deref().expect("level order");
                    }
                    out.push((
                        slot,
                        gate.output,
                        template.bind_with(&ins[..gate.inputs.len()], options, plan),
                    ));
                }
                out
            };
            bind_span.set_arg("plans", plans.len() as u64);
            drop(bind_span);
            // Group the still-pending plans by model slot, then evaluate
            // in rounds: one batched inference per (model, round),
            // scattered back to the plans; exhausted plans drop out of
            // their slot's list so each is polled exactly once per query.
            // Each plan's own query sequence is untouched by the
            // interleaving, so traces match the scalar path bit for bit.
            for (pi, (slot, _, plan)) in plans.iter().enumerate() {
                if plan.pending() > 0 {
                    pending[*slot].push(pi);
                }
            }
            loop {
                let mut progressed = false;
                for (slot, member) in pending.iter_mut().enumerate() {
                    if member.is_empty() {
                        continue;
                    }
                    progressed = true;
                    queries.clear();
                    for &pi in member.iter() {
                        queries.push(plans[pi].2.next_query().expect("pending plan"));
                    }
                    ROUND_ROWS.record(queries.len() as u64);
                    let mut infer_span = sigobs::span("execute.infer");
                    infer_span.set_arg("rows", queries.len() as u64);
                    predict_chunked(cells.by_slot(slot), queries, predictions, parallelism);
                    drop(infer_span);
                    round.clear();
                    std::mem::swap(member, round);
                    for (&pi, &p) in round.iter().zip(predictions.iter()) {
                        plans[pi].2.apply(p);
                        if plans[pi].2.pending() > 0 {
                            member.push(pi);
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            // Finalize after the plans (which borrow the input slots) are
            // consumed, then publish the level's outputs.
            let finalize_span = sigobs::span("execute.finalize");
            let finished: Vec<(NetId, SigmoidTrace)> = plans
                .into_iter()
                .map(|(_, output, plan)| (output, plan.into_trace()))
                .collect();
            for (output, trace) in finished {
                nets[output.0] = Some(Arc::new(trace));
            }
            for (output, source) in aliases {
                let shared = nets[source.0].clone().expect("memoized gate ran");
                nets[output.0] = Some(shared);
            }
            drop(finalize_span);
        } else {
            // Scalar mode: per-gate one-shot predictions, optionally
            // fanned over the pool (gates within a level are independent).
            let outs: Vec<(NetId, SigmoidTrace)> =
                sigwave::parallel::par_map(level_parallelism, level, |_, &gi| {
                    let gate = &circuit.gates()[gi];
                    let ins: Vec<&SigmoidTrace> = gate
                        .inputs
                        .iter()
                        .map(|i| nets[i.0].as_deref().expect("level order"))
                        .collect();
                    let model = cells.by_slot(tables.slots[gi]);
                    (
                        gate.output,
                        apply_plan(tables.templates[gi].bind(&ins, options), model),
                    )
                });
            for (output, trace) in outs {
                nets[output.0] = Some(Arc::new(trace));
            }
        }
    }

    let mut undriven = Vec::new();
    let mut filler: Option<Arc<SigmoidTrace>> = None;
    let traces = nets
        .drain(..)
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(t) => t,
            None => {
                undriven.push(NetId(i));
                Arc::clone(filler.get_or_insert_with(|| {
                    Arc::new(SigmoidTrace::constant(Level::Low, options.vdd))
                }))
            }
        })
        .collect();
    Ok(SigmoidSimResult { traces, undriven })
}

/// One batched model evaluation: queries are clamped/projected in place
/// (the round buffer doubles as the scratch — no allocation per call),
/// then inference is chunked across the worker pool when the batch is
/// large enough to amortize the fan-out. Chunking only regroups rows;
/// every row's arithmetic is unchanged, so results are identical to the
/// single-call form. `workers` must already be resolved (`>= 1`).
fn predict_chunked(
    model: &GateModel,
    queries: &mut [TransferQuery],
    out: &mut Vec<sigtom::TransferPrediction>,
    workers: usize,
) {
    model.prepare_batch(queries);
    if workers <= 1 || queries.len() < 2 * PAR_MIN_BATCH_ROWS {
        model.transfer.predict_batch(queries, out);
        return;
    }
    let queries: &[TransferQuery] = queries;
    let chunk = queries.len().div_ceil(workers).max(PAR_MIN_BATCH_ROWS);
    let ranges: Vec<std::ops::Range<usize>> = (0..queries.len())
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(queries.len()))
        .collect();
    let parts = sigwave::parallel::par_map(workers, &ranges, |_, range| {
        let mut part = Vec::with_capacity(range.len());
        model
            .transfer
            .predict_batch(&queries[range.clone()], &mut part);
        part
    });
    out.clear();
    out.reserve(queries.len());
    for part in parts {
        out.extend(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::CircuitBuilder;
    use sigtom::{TransferFunction, TransferPrediction};
    use sigwave::{Sigmoid, VDD_DEFAULT};

    struct Fixed(f64);
    impl TransferFunction for Fixed {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            TransferPrediction {
                a_out: -q.a_in.signum() * 14.0,
                delay: self.0,
            }
        }
        fn backend_name(&self) -> &'static str {
            "fixed"
        }
    }

    fn models(inv_d: f64, fo1_d: f64, fo2_d: f64) -> GateModels {
        GateModels {
            inverter: GateModel::new(Arc::new(Fixed(inv_d))),
            inverter_fo2: GateModel::new(Arc::new(Fixed(inv_d))),
            nor_fo1: GateModel::new(Arc::new(Fixed(fo1_d))),
            nor_fo2: GateModel::new(Arc::new(Fixed(fo2_d))),
        }
    }

    fn rising_input() -> Arc<SigmoidTrace> {
        Arc::new(
            SigmoidTrace::from_transitions(
                Level::Low,
                vec![Sigmoid::rising(12.0, 1.0)],
                VDD_DEFAULT,
            )
            .unwrap(),
        )
    }

    fn constant(level: Level) -> Arc<SigmoidTrace> {
        Arc::new(SigmoidTrace::constant(level, VDD_DEFAULT))
    }

    #[test]
    fn inverter_chain_accumulates_delay() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        let n2 = b.add_gate(GateKind::Nor, &[n1], "n2");
        b.mark_output(n2);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        let out = res.trace(n2);
        assert_eq!(out.len(), 1);
        assert!((out.transitions()[0].b - 1.10).abs() < 1e-9);
        assert!(out.transitions()[0].is_rising());
        assert_eq!(out.initial(), Level::Low);
        assert!(res.undriven().is_empty());
    }

    #[test]
    fn fanout_selects_model() {
        // One NOR2 drives two loads: it must use the FO2 model (delay 0.2).
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let z = b.add_input("z");
        let n1 = b.add_gate(GateKind::Nor, &[a, z], "n1");
        let l1 = b.add_gate(GateKind::Nor, &[n1], "l1");
        let l2 = b.add_gate(GateKind::Nor, &[n1], "l2");
        b.mark_output(l1);
        b.mark_output(l2);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        stim.insert(z, constant(Level::Low));
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        // n1 falls at 1.0 + 0.2 (FO2 model).
        assert!((res.trace(n1).transitions()[0].b - 1.2).abs() < 1e-9);
        // loads are single-input NORs -> inverter model, +0.05.
        assert!((res.trace(l1).transitions()[0].b - 1.25).abs() < 1e-9);
    }

    #[test]
    fn unsupported_gate_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Inv, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, rising_input());
        let err =
            simulate_sigmoid(&c, &stim, &models(0.1, 0.1, 0.1), TomOptions::default()).unwrap_err();
        assert!(matches!(err, SigmoidSimError::UnsupportedGate { .. }));
    }

    #[test]
    fn missing_stimulus_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let err = simulate_sigmoid(
            &c,
            &HashMap::new(),
            &models(0.1, 0.1, 0.1),
            TomOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SigmoidSimError::MissingStimulus { .. }));
    }

    #[test]
    fn c17_nor_mapped_simulates() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let c = &bench.nor_mapped;
        let mut stim = HashMap::new();
        for (i, &input) in c.inputs().iter().enumerate() {
            let t = if i == 2 {
                rising_input()
            } else {
                constant(Level::Low)
            };
            stim.insert(input, t);
        }
        let res =
            simulate_sigmoid(c, &stim, &models(0.05, 0.08, 0.12), TomOptions::default()).unwrap();
        // Final levels must match the boolean evaluation.
        let mut bits = vec![false; 5];
        bits[2] = true;
        let expect = c.eval(&bits);
        for (o, e) in c.outputs().iter().zip(expect) {
            assert_eq!(
                res.trace(*o).final_level().is_high(),
                e,
                "output {} disagrees with boolean evaluation",
                c.net_name(*o)
            );
        }
    }

    #[test]
    fn input_traces_are_shared_not_cloned() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let stimulus = rising_input();
        let mut stim = HashMap::new();
        stim.insert(a, Arc::clone(&stimulus));
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        // The result's input slot is the same allocation as the stimulus.
        assert!(Arc::ptr_eq(&res.traces()[a.0], &stimulus));
    }

    #[test]
    fn all_configs_bit_identical_on_c17() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let c = &bench.nor_mapped;
        let mut stim = HashMap::new();
        for (i, &input) in c.inputs().iter().enumerate() {
            let t = if i % 2 == 0 {
                Arc::new(
                    SigmoidTrace::from_transitions(
                        Level::Low,
                        vec![
                            Sigmoid::rising(12.0, 1.0 + 0.3 * i as f64),
                            Sigmoid::falling(9.0, 2.0 + 0.4 * i as f64),
                            Sigmoid::rising(15.0, 4.0 + 0.2 * i as f64),
                        ],
                        VDD_DEFAULT,
                    )
                    .unwrap(),
                )
            } else {
                constant(Level::Low)
            };
            stim.insert(input, t);
        }
        let m = models(0.05, 0.08, 0.12);
        let opts = TomOptions::default();
        let reference =
            simulate_sigmoid_with(c, &stim, &m, opts, &SigmoidSimConfig::scalar()).unwrap();
        for config in [
            SigmoidSimConfig {
                parallelism: 1,
                batch: true,
            },
            SigmoidSimConfig {
                parallelism: 4,
                batch: true,
            },
            SigmoidSimConfig {
                parallelism: 4,
                batch: false,
            },
            SigmoidSimConfig {
                parallelism: 0,
                batch: true,
            },
        ] {
            let got = simulate_sigmoid_with(c, &stim, &m, opts, &config).unwrap();
            for net in 0..c.net_count() {
                assert_eq!(
                    got.trace(NetId(net)),
                    reference.trace(NetId(net)),
                    "net {net} differs under {config:?}"
                );
            }
        }
    }

    /// A transfer with history (`T`) and slope dependence so interleaving
    /// bugs would actually change the numbers.
    struct HistoryTransfer;
    impl TransferFunction for HistoryTransfer {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            let degradation = 1.0 - (-q.t / 0.25).exp();
            TransferPrediction {
                a_out: -q.a_in.signum() * (10.0 + 0.2 * q.a_prev_out.abs()) * degradation.max(0.04),
                delay: 0.05 + 0.01 * (-q.t / 0.4).exp() + 0.3 / q.a_in.abs().max(1.0),
            }
        }
        fn backend_name(&self) -> &'static str {
            "history"
        }
    }

    proptest::proptest! {
        #[test]
        fn batched_and_parallel_match_scalar_on_random_dags(seed in 0u64..u64::MAX) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

            // Random NOR-only DAG: 1–4 primary inputs, up to 14 gates of
            // arity 1–3 reading any earlier net (so fan-outs of 0, 1 and
            // ≥ 2 all occur and exercise every model slot).
            let mut b = CircuitBuilder::new();
            let n_inputs = rng.gen_range(1..5usize);
            let mut nets: Vec<NetId> =
                (0..n_inputs).map(|i| b.add_input(&format!("i{i}"))).collect();
            let n_gates = rng.gen_range(1..15usize);
            for g in 0..n_gates {
                let arity = rng.gen_range(1..4usize);
                let mut ins: Vec<NetId> = Vec::new();
                for _ in 0..arity {
                    let pick = nets[rng.gen_range(0..nets.len())];
                    if !ins.contains(&pick) {
                        ins.push(pick);
                    }
                }
                let out = b.add_gate(GateKind::Nor, &ins, &format!("g{g}"));
                nets.push(out);
            }
            b.mark_output(*nets.last().expect("at least one net"));
            let c = b.build().expect("random DAG is valid");

            // Random stimuli: 0–5 alternating transitions per input with
            // random slopes, spacings and initial levels.
            let mut stim = HashMap::new();
            for &input in c.inputs() {
                let initial = if rng.gen::<bool>() { Level::High } else { Level::Low };
                let mut rising = !initial.is_high();
                let mut t = 0.0;
                let mut transitions = Vec::new();
                for _ in 0..rng.gen_range(0..6usize) {
                    t += rng.gen_range(0.03..1.5f64);
                    let a = rng.gen_range(5.0..25.0f64);
                    transitions.push(if rising {
                        Sigmoid::rising(a, t)
                    } else {
                        Sigmoid::falling(a, t)
                    });
                    rising = !rising;
                }
                let trace =
                    SigmoidTrace::from_transitions(initial, transitions, VDD_DEFAULT).unwrap();
                stim.insert(input, Arc::new(trace));
            }

            // Distinct per-slot models so a slot mix-up changes results.
            let m = GateModels {
                inverter: GateModel::new(Arc::new(HistoryTransfer)),
                inverter_fo2: GateModel::new(Arc::new(Fixed(0.09))),
                nor_fo1: GateModel::new(Arc::new(HistoryTransfer)),
                nor_fo2: GateModel::new(Arc::new(Fixed(0.13))),
            };
            let opts = TomOptions::default();
            let reference =
                simulate_sigmoid_with(&c, &stim, &m, opts, &SigmoidSimConfig::scalar()).unwrap();
            for config in [
                SigmoidSimConfig { parallelism: 1, batch: true },
                SigmoidSimConfig { parallelism: 3, batch: true },
                SigmoidSimConfig { parallelism: 3, batch: false },
            ] {
                let got = simulate_sigmoid_with(&c, &stim, &m, opts, &config).unwrap();
                for net in 0..c.net_count() {
                    proptest::prop_assert_eq!(
                        got.trace(NetId(net)),
                        reference.trace(NetId(net)),
                        "net {} differs under {:?} (seed {})",
                        net,
                        config,
                        seed
                    );
                }
            }
        }
    }

    /// Buffering synthetic transfer (what trained AND/OR cells produce).
    struct Buffering(f64);
    impl TransferFunction for Buffering {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            TransferPrediction {
                a_out: q.a_in.signum() * 14.0,
                delay: self.0,
            }
        }
        fn backend_name(&self) -> &'static str {
            "buffering"
        }
    }

    /// A synthetic native cell set: inverting models for INV/NOR/NAND,
    /// buffering models for AND/OR, distinct per-cell delays so slot
    /// mix-ups change results.
    fn native_cells() -> CellModels {
        let mut cells = CellModels::empty("native");
        let invert = |cells: &mut CellModels, kind, delay| {
            let slot = cells.push(GateModel::new(Arc::new(Fixed(delay))));
            cells.bind(slot, kind, kind == GateKind::Inv, false);
            cells.bind(slot, kind, kind == GateKind::Inv, true);
        };
        invert(&mut cells, GateKind::Inv, 0.05);
        invert(&mut cells, GateKind::Nor, 0.08);
        invert(&mut cells, GateKind::Nand, 0.09);
        // The inverter cell also serves single-input NORs.
        let inv_slot = cells.slot_for(GateKind::Inv, 1, 1).unwrap();
        cells.bind(inv_slot, GateKind::Nor, true, false);
        cells.bind(inv_slot, GateKind::Nor, true, true);
        let buffer = |cells: &mut CellModels, kind, delay| {
            let slot = cells.push(GateModel::new(Arc::new(Buffering(delay))));
            cells.bind(slot, kind, false, false);
            cells.bind(slot, kind, false, true);
        };
        buffer(&mut cells, GateKind::And, 0.11);
        buffer(&mut cells, GateKind::Or, 0.12);
        cells
    }

    fn random_trace(rng: &mut rand::rngs::StdRng) -> Arc<SigmoidTrace> {
        use rand::Rng;
        let initial = if rng.gen::<bool>() {
            Level::High
        } else {
            Level::Low
        };
        let mut rising = !initial.is_high();
        let mut t = 0.0;
        let mut transitions = Vec::new();
        for _ in 0..rng.gen_range(0..5usize) {
            t += rng.gen_range(0.05..1.2f64);
            let a = rng.gen_range(6.0..22.0f64);
            transitions.push(if rising {
                Sigmoid::rising(a, t)
            } else {
                Sigmoid::falling(a, t)
            });
            rising = !rising;
        }
        Arc::new(SigmoidTrace::from_transitions(initial, transitions, VDD_DEFAULT).unwrap())
    }

    fn random_native_stimuli(circuit: &Circuit, seed: u64) -> HashMap<NetId, Arc<SigmoidTrace>> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        circuit
            .inputs()
            .iter()
            .map(|&input| (input, random_trace(&mut rng)))
            .collect()
    }

    #[test]
    fn xor_xnor_rejected_by_named_error_before_simulation() {
        // XOR/XNOR parse fine but no cell set simulates them: both the
        // NOR-only and the native models must reject them with the named
        // UnsupportedGate error from the upfront validation pass — never
        // a panic, and never after part of the circuit already simulated.
        for kind in [GateKind::Xor, GateKind::Xnor] {
            let mut b = CircuitBuilder::new();
            let a = b.add_input("a");
            let z = b.add_input("z");
            let y = b.add_gate(kind, &[a, z], "y");
            b.mark_output(y);
            let c = b.build().unwrap();
            let mut stim = HashMap::new();
            stim.insert(a, rising_input());
            stim.insert(z, constant(Level::Low));
            let legacy = simulate_sigmoid(&c, &stim, &models(0.1, 0.1, 0.1), TomOptions::default())
                .unwrap_err();
            assert_eq!(legacy, SigmoidSimError::UnsupportedGate { kind, arity: 2 });
            let native = simulate_cells_with(
                &c,
                &stim,
                &native_cells(),
                TomOptions::default(),
                &SigmoidSimConfig::default(),
            )
            .unwrap_err();
            assert_eq!(native, SigmoidSimError::UnsupportedGate { kind, arity: 2 });
        }
    }

    #[test]
    fn native_c17_matches_boolean_eval_and_nor_parity() {
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        assert_eq!(bench.native.gates().len(), 6, "c17 stays 6 native NAND2s");
        let cells = native_cells();
        let mut bits = vec![false; 5];
        bits[2] = true;
        let mut stim = HashMap::new();
        for (i, &input) in bench.native.inputs().iter().enumerate() {
            let t = if i == 2 {
                rising_input()
            } else {
                constant(Level::Low)
            };
            stim.insert(input, t);
        }
        let res = simulate_cells_with(
            &bench.native,
            &stim,
            &cells,
            TomOptions::default(),
            &SigmoidSimConfig::default(),
        )
        .unwrap();
        let expect = bench.native.eval(&bits);
        for (o, e) in bench.native.outputs().iter().zip(&expect) {
            assert_eq!(
                res.trace(*o).final_level().is_high(),
                *e,
                "native output {} disagrees with boolean evaluation",
                bench.native.net_name(*o)
            );
        }
        // Policy parity: the NOR-mapped form under the same stimuli (by
        // input position) settles to the same output levels.
        let mut nor_stim = HashMap::new();
        for (i, &input) in bench.nor_mapped.inputs().iter().enumerate() {
            let t = if i == 2 {
                rising_input()
            } else {
                constant(Level::Low)
            };
            nor_stim.insert(input, t);
        }
        let nor_res = simulate_sigmoid(
            &bench.nor_mapped,
            &nor_stim,
            &models(0.05, 0.08, 0.12),
            TomOptions::default(),
        )
        .unwrap();
        for (no, o) in bench
            .nor_mapped
            .outputs()
            .iter()
            .zip(bench.native.outputs())
        {
            assert_eq!(
                nor_res.trace(*no).final_level(),
                res.trace(*o).final_level(),
                "policies disagree on a settled output level"
            );
        }
    }

    #[test]
    fn native_c1355_bit_reproducible_across_runs_and_configs() {
        // The acceptance headline: native-library c1355 end-to-end, twice,
        // at several scheduling settings — every trace bit-identical.
        let bench = sigcircuit::Benchmark::by_name("c1355").unwrap();
        let c = &bench.native;
        let cells = native_cells();
        let stim = random_native_stimuli(c, 20250728);
        let opts = TomOptions::default();
        let reference =
            simulate_cells_with(c, &stim, &cells, opts, &SigmoidSimConfig::scalar()).unwrap();
        for config in [
            SigmoidSimConfig::default(),
            SigmoidSimConfig::default(), // a second identical run
            SigmoidSimConfig {
                parallelism: 3,
                batch: true,
            },
            SigmoidSimConfig {
                parallelism: 1,
                batch: true,
            },
        ] {
            let got = simulate_cells_with(c, &stim, &cells, opts, &config).unwrap();
            for net in 0..c.net_count() {
                assert_eq!(
                    got.trace(NetId(net)),
                    reference.trace(NetId(net)),
                    "net {net} differs under {config:?}"
                );
            }
        }
        // Digital parity with the boolean evaluation on settled levels.
        let bits: Vec<bool> = c
            .inputs()
            .iter()
            .map(|&i| {
                let t = &stim[&i];
                t.final_level().is_high()
            })
            .collect();
        let expect = c.eval(&bits);
        for (o, e) in c.outputs().iter().zip(&expect) {
            assert_eq!(reference.trace(*o).final_level().is_high(), *e);
        }
    }

    /// Builds a random multi-kind DAG out of native-simulable cells
    /// (INV, NOR1–3, NAND2, AND2, OR2) reading any earlier net.
    fn random_native_dag(seed: u64) -> Circuit {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new();
        let n_inputs = rng.gen_range(1..5usize);
        let mut nets: Vec<NetId> = (0..n_inputs)
            .map(|i| b.add_input(&format!("i{i}")))
            .collect();
        let n_gates = rng.gen_range(1..15usize);
        for g in 0..n_gates {
            let kind = match rng.gen_range(0..5u32) {
                0 => GateKind::Inv,
                1 => GateKind::Nor,
                2 => GateKind::Nand,
                3 => GateKind::And,
                _ => GateKind::Or,
            };
            let arity = match kind {
                GateKind::Inv => 1,
                GateKind::Nor => rng.gen_range(1..4usize),
                _ => 2,
            };
            let mut ins: Vec<NetId> = Vec::new();
            while ins.len() < arity {
                let pick = nets[rng.gen_range(0..nets.len())];
                if !ins.contains(&pick) {
                    ins.push(pick);
                } else if nets.len() <= ins.len() {
                    break; // not enough distinct nets for this arity
                }
            }
            if ins.len() < arity.min(2) || ins.is_empty() {
                continue;
            }
            let out = b.add_gate(kind, &ins, &format!("g{g}"));
            nets.push(out);
        }
        if nets.len() == n_inputs {
            // Every roll skipped (tiny net pool vs 2-input kinds): make
            // the DAG non-trivial so the output is gate-driven.
            nets.push(b.add_gate(GateKind::Inv, &[nets[0]], "g_fallback"));
        }
        b.mark_output(*nets.last().expect("at least one net"));
        b.build().expect("random DAG is valid")
    }

    proptest::proptest! {
        /// The acceptance-criterion parity property: on random DAGs under
        /// BOTH mapping policies, a compiled program executed at every
        /// scheduling setting — through one reused scratch arena — is
        /// bit-identical to the legacy fused entry point.
        #[test]
        fn program_execute_matches_fused_path_on_random_dags(seed in 0u64..u64::MAX) {
            let native = random_native_dag(seed);
            let nor = sigcircuit::map_with_policy(
                &native,
                sigcircuit::MappingPolicy::NorOnly,
                sigcircuit::NorMappingOptions::default(),
            );
            let nor_cells = CellModels::nor_only(&GateModels {
                inverter: GateModel::new(Arc::new(HistoryTransfer)),
                inverter_fo2: GateModel::new(Arc::new(Fixed(0.09))),
                nor_fo1: GateModel::new(Arc::new(HistoryTransfer)),
                nor_fo2: GateModel::new(Arc::new(Fixed(0.13))),
            });
            let opts = TomOptions::default();
            let mut scratch = SimScratch::new();
            for (circuit, cells) in [(&native, native_cells()), (&nor, nor_cells)] {
                let stim = random_native_stimuli(circuit, seed ^ 0x5eed);
                let program = CircuitProgram::compile(
                    Arc::new(circuit.clone()),
                    Arc::new(cells.clone()),
                    opts,
                )
                .expect("simulable DAG compiles");
                for config in [
                    SigmoidSimConfig::scalar(),
                    SigmoidSimConfig { parallelism: 1, batch: true },
                    SigmoidSimConfig { parallelism: 3, batch: true },
                    SigmoidSimConfig { parallelism: 3, batch: false },
                ] {
                    let fused =
                        simulate_cells_with(circuit, &stim, &cells, opts, &config).unwrap();
                    let executed = program.execute_with(&stim, &config, &mut scratch).unwrap();
                    for net in 0..circuit.net_count() {
                        proptest::prop_assert_eq!(
                            executed.trace(NetId(net)),
                            fused.trace(NetId(net)),
                            "net {} differs under {:?} (seed {}, cells {})",
                            net,
                            config,
                            seed,
                            cells.name()
                        );
                    }
                }
            }
        }
    }

    proptest::proptest! {
        /// The fleet parity property: on random DAGs under BOTH mapping
        /// policies, one `execute_fleet` of K independently-seeded
        /// stimulus sets is bit-identical, run for run and net for net,
        /// to K independent `execute_with` calls — the merged per-slot
        /// batches never change a row's arithmetic.
        #[test]
        fn fleet_matches_independent_runs_on_random_dags(seed in 0u64..u64::MAX) {
            let native = random_native_dag(seed);
            let nor = sigcircuit::map_with_policy(
                &native,
                sigcircuit::MappingPolicy::NorOnly,
                sigcircuit::NorMappingOptions::default(),
            );
            let nor_cells = CellModels::nor_only(&GateModels {
                inverter: GateModel::new(Arc::new(HistoryTransfer)),
                inverter_fo2: GateModel::new(Arc::new(Fixed(0.09))),
                nor_fo1: GateModel::new(Arc::new(HistoryTransfer)),
                nor_fo2: GateModel::new(Arc::new(Fixed(0.13))),
            });
            let opts = TomOptions::default();
            let mut solo = SimScratch::new();
            let mut fleet = FleetScratch::new();
            for (circuit, cells) in [(&native, native_cells()), (&nor, nor_cells)] {
                let program = CircuitProgram::compile(
                    Arc::new(circuit.clone()),
                    Arc::new(cells),
                    opts,
                )
                .expect("simulable DAG compiles");
                let sets: Vec<HashMap<NetId, Arc<SigmoidTrace>>> = (0..4)
                    .map(|r| random_native_stimuli(circuit, seed ^ (r as u64) << 17))
                    .collect();
                let config = SigmoidSimConfig::default();
                let results = program
                    .execute_fleet_with(&sets, &config, &mut fleet)
                    .unwrap();
                proptest::prop_assert_eq!(results.len(), sets.len());
                for (r, (stim, got)) in sets.iter().zip(&results).enumerate() {
                    let independent =
                        program.execute_with(stim, &config, &mut solo).unwrap();
                    proptest::prop_assert_eq!(
                        &got.undriven, &independent.undriven,
                        "run {} undriven set differs (seed {})", r, seed
                    );
                    for net in 0..circuit.net_count() {
                        proptest::prop_assert!(
                            traces_bit_identical(
                                got.trace(NetId(net)),
                                independent.trace(NetId(net)),
                            ),
                            "run {} net {} differs from independent execution \
                             (seed {}, cells {})",
                            r,
                            net,
                            seed,
                            program.cells().name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fleet_scratch_reuse_is_bit_identical_and_counts() {
        // Run the same fleet twice through one arena: the second pass
        // reuses every grown buffer and must reproduce each trace bit for
        // bit; the arena counters advance by the fleet width each time.
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let program = CircuitProgram::compile(
            Arc::new(bench.native.clone()),
            Arc::new(native_cells()),
            TomOptions::default(),
        )
        .unwrap();
        let sets: Vec<HashMap<NetId, Arc<SigmoidTrace>>> = (0..3)
            .map(|r| random_native_stimuli(&bench.native, 7000 + r))
            .collect();
        let mut scratch = FleetScratch::new();
        assert_eq!(scratch.runs(), 0);
        assert_eq!(scratch.rows_merged(), 0);
        let first = program.execute_fleet(&sets, &mut scratch).unwrap();
        assert_eq!(scratch.runs(), 3);
        let rows_first = scratch.rows_merged();
        assert!(rows_first > 0, "merged batches must issue rows");
        let second = program.execute_fleet(&sets, &mut scratch).unwrap();
        assert_eq!(scratch.runs(), 6);
        assert_eq!(
            scratch.rows_merged(),
            2 * rows_first,
            "identical fleets issue identical row counts"
        );
        assert!(scratch.net_capacity() >= 3 * bench.native.net_count());
        for (a, b) in first.iter().zip(&second) {
            for net in 0..bench.native.net_count() {
                assert!(
                    traces_bit_identical(a.trace(NetId(net)), b.trace(NetId(net))),
                    "net {net} differs between arena reuses"
                );
            }
        }
        // An empty fleet is a no-op that returns no results.
        let empty = program.execute_fleet(&[], &mut scratch).unwrap();
        assert!(empty.is_empty());
        assert_eq!(scratch.runs(), 6);
    }

    #[test]
    fn fleet_missing_stimulus_fails_whole_fleet() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let cells = CellModels::nor_only(&models(0.05, 0.1, 0.2));
        let program =
            CircuitProgram::compile(Arc::new(c), Arc::new(cells), TomOptions::default()).unwrap();
        let mut good = HashMap::new();
        good.insert(a, rising_input());
        let sets = vec![good, HashMap::new()];
        let err = program
            .execute_fleet(&sets, &mut FleetScratch::new())
            .unwrap_err();
        assert!(matches!(err, SigmoidSimError::MissingStimulus { .. }));
    }

    #[test]
    fn delta_matches_cold_execute_and_stops_at_converged_gates() {
        // NOR(a, z) with z held High masks a: an edit on a re-evaluates
        // the NOR once, finds a bit-identical constant-Low output, and
        // stops — the downstream inverter is never touched.
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let z = b.add_input("z");
        let n1 = b.add_gate(GateKind::Nor, &[a, z], "n1");
        let n2 = b.add_gate(GateKind::Nor, &[n1], "n2");
        b.mark_output(n2);
        let c = b.build().unwrap();
        let cells = CellModels::nor_only(&models(0.05, 0.1, 0.2));
        let program =
            CircuitProgram::compile(Arc::new(c), Arc::new(cells), TomOptions::default()).unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, constant(Level::Low));
        stim.insert(z, constant(Level::High));
        let mut scratch = SimScratch::new();
        let mut state = program.open_session(&stim, &mut scratch).unwrap();
        assert_eq!(state.deltas(), 0);
        assert_eq!(state.gates_reeval(), 0);

        let edit = StimulusEdit {
            net: a,
            trace: rising_input(),
        };
        stim.insert(a, Arc::clone(&edit.trace));
        let res = program.execute_delta(&mut state, &[edit]).unwrap();
        assert_eq!(state.deltas(), 1);
        assert_eq!(state.last_reeval(), 1, "only the masked NOR re-evaluates");
        let cold = program
            .execute_with(&stim, &SigmoidSimConfig::scalar(), &mut scratch)
            .unwrap();
        for net in 0..program.circuit().net_count() {
            assert!(
                traces_bit_identical(res.trace(NetId(net)), cold.trace(NetId(net))),
                "net {net} differs from cold execution"
            );
        }
        // The edited input trace is shared into the state, not cloned.
        assert!(Arc::ptr_eq(&res.traces()[a.0], &stim[&a]));

        // A bit-identical edit (same content, fresh allocation) is a
        // no-op: no gate re-evaluates, the result is unchanged.
        let res2 = program
            .execute_delta(
                &mut state,
                &[StimulusEdit {
                    net: a,
                    trace: rising_input(),
                }],
            )
            .unwrap();
        assert_eq!(state.deltas(), 2);
        assert_eq!(state.last_reeval(), 0);
        assert_eq!(state.gates_reeval(), 1);
        for net in 0..program.circuit().net_count() {
            assert!(traces_bit_identical(
                res2.trace(NetId(net)),
                res.trace(NetId(net))
            ));
        }
        // An empty edit batch is likewise a committed-state read.
        let res3 = program.execute_delta(&mut state, &[]).unwrap();
        assert_eq!(state.last_reeval(), 0);
        assert!(traces_bit_identical(res3.trace(n2), res.trace(n2)));
    }

    #[test]
    fn delta_rejects_edits_on_internal_nets() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let n1 = b.add_gate(GateKind::Nor, &[a], "n1");
        b.mark_output(n1);
        let c = b.build().unwrap();
        let cells = CellModels::nor_only(&models(0.05, 0.1, 0.2));
        let program =
            CircuitProgram::compile(Arc::new(c), Arc::new(cells), TomOptions::default()).unwrap();
        let mut stim = HashMap::new();
        stim.insert(a, constant(Level::Low));
        let mut scratch = SimScratch::new();
        let mut state = program.open_session(&stim, &mut scratch).unwrap();
        let err = program
            .execute_delta(
                &mut state,
                &[StimulusEdit {
                    net: n1,
                    trace: rising_input(),
                }],
            )
            .unwrap_err();
        assert_eq!(
            err,
            SigmoidSimError::EditNotAnInput {
                net: "n1".to_string()
            }
        );
        // Validation precedes any commit: the state is untouched.
        assert_eq!(state.deltas(), 0);
        assert_eq!(state.gates_reeval(), 0);
    }

    #[test]
    fn single_edit_delta_reevaluates_only_affected_cone_on_c1355() {
        // The acceptance claim behind the `delta_c1355/1edit` bench row:
        // one edited input re-evaluates only its fan-out cone — a small
        // fraction of the 546-gate netlist — and stays bit-identical to
        // a cold full execution of the edited stimuli.
        let bench = sigcircuit::Benchmark::by_name("c1355").unwrap();
        let c = &bench.native;
        let program = CircuitProgram::compile(
            Arc::new(c.clone()),
            Arc::new(native_cells()),
            TomOptions::default(),
        )
        .unwrap();
        let mut stim = random_native_stimuli(c, 20250807);
        let mut scratch = SimScratch::new();
        let mut state = program.open_session(&stim, &mut scratch).unwrap();
        let input = c.inputs()[0];
        let edit = StimulusEdit {
            net: input,
            trace: rising_input(),
        };
        stim.insert(input, Arc::clone(&edit.trace));
        let res = program.execute_delta(&mut state, &[edit]).unwrap();
        let gate_count = c.gates().len() as u64;
        assert!(state.last_reeval() > 0, "the edit must change something");
        assert!(
            state.last_reeval() * 4 < gate_count,
            "cone of one input ({} gates) should be \u{226a} the {} total",
            state.last_reeval(),
            gate_count
        );
        let cold = program
            .execute_with(&stim, &SigmoidSimConfig::scalar(), &mut scratch)
            .unwrap();
        for net in 0..c.net_count() {
            assert!(
                traces_bit_identical(res.trace(NetId(net)), cold.trace(NetId(net))),
                "net {net} differs from cold execution after cone-only delta"
            );
        }
    }

    proptest::proptest! {
        /// The incremental-engine parity property: on random DAGs under
        /// BOTH mapping policies, a chain of random edit batches applied
        /// through `execute_delta` equals a cold full `execute` of the
        /// final stimuli after every step, bit for bit on every net.
        #[test]
        fn delta_chain_matches_cold_execute_on_random_dags(seed in 0u64..u64::MAX) {
            use rand::{Rng, SeedableRng};
            let native = random_native_dag(seed);
            let nor = sigcircuit::map_with_policy(
                &native,
                sigcircuit::MappingPolicy::NorOnly,
                sigcircuit::NorMappingOptions::default(),
            );
            let nor_cells = CellModels::nor_only(&GateModels {
                inverter: GateModel::new(Arc::new(HistoryTransfer)),
                inverter_fo2: GateModel::new(Arc::new(Fixed(0.09))),
                nor_fo1: GateModel::new(Arc::new(HistoryTransfer)),
                nor_fo2: GateModel::new(Arc::new(Fixed(0.13))),
            });
            let opts = TomOptions::default();
            let mut scratch = SimScratch::new();
            for (circuit, cells) in [(&native, native_cells()), (&nor, nor_cells)] {
                let mut stim = random_native_stimuli(circuit, seed ^ 0x5eed);
                let program = CircuitProgram::compile(
                    Arc::new(circuit.clone()),
                    Arc::new(cells),
                    opts,
                )
                .expect("simulable DAG compiles");
                let mut state = program.open_session(&stim, &mut scratch).unwrap();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xde17a);
                for step in 0..3 {
                    let mut edits = Vec::new();
                    for &input in circuit.inputs() {
                        if rng.gen::<bool>() {
                            let trace = random_trace(&mut rng);
                            stim.insert(input, Arc::clone(&trace));
                            edits.push(StimulusEdit { net: input, trace });
                        }
                    }
                    let incremental = program.execute_delta(&mut state, &edits).unwrap();
                    let cold = program
                        .execute_with(&stim, &SigmoidSimConfig::scalar(), &mut scratch)
                        .unwrap();
                    for net in 0..circuit.net_count() {
                        proptest::prop_assert!(
                            traces_bit_identical(
                                incremental.trace(NetId(net)),
                                cold.trace(NetId(net)),
                            ),
                            "net {} differs after delta step {} (seed {}, cells {})",
                            net,
                            step,
                            seed,
                            program.cells().name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_program_reused_across_stimuli_matches_fresh_runs() {
        // Compile once, execute twice with different stimuli through the
        // same scratch: each execution must equal a fresh fused run — the
        // program holds no per-run state.
        let bench = sigcircuit::Benchmark::by_name("c17").unwrap();
        let cells = native_cells();
        let opts = TomOptions::default();
        let program = CircuitProgram::compile(
            Arc::new(bench.native.clone()),
            Arc::new(cells.clone()),
            opts,
        )
        .unwrap();
        assert_eq!(program.options(), opts);
        assert_eq!(program.cells().name(), "native");
        let mut scratch = SimScratch::new();
        for seed in [1u64, 20250728] {
            let stim = random_native_stimuli(&bench.native, seed);
            let executed = program.execute(&stim, &mut scratch).unwrap();
            let fresh = simulate_cells_with(
                &bench.native,
                &stim,
                &cells,
                opts,
                &SigmoidSimConfig::default(),
            )
            .unwrap();
            for net in 0..bench.native.net_count() {
                assert_eq!(
                    executed.trace(NetId(net)),
                    fresh.trace(NetId(net)),
                    "seed {seed}: net {net} differs after program reuse"
                );
            }
            // Input traces are shared, not copied, through the program
            // path too.
            let first_input = bench.native.inputs()[0];
            assert!(Arc::ptr_eq(
                &executed.traces()[first_input.0],
                &stim[&first_input]
            ));
        }
    }

    #[test]
    fn program_compile_rejects_unsupported_gates() {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let z = b.add_input("z");
        let y = b.add_gate(GateKind::Xor, &[a, z], "y");
        b.mark_output(y);
        let c = b.build().unwrap();
        let err =
            CircuitProgram::compile(Arc::new(c), Arc::new(native_cells()), TomOptions::default())
                .unwrap_err();
        assert_eq!(
            err,
            SigmoidSimError::UnsupportedGate {
                kind: GateKind::Xor,
                arity: 2
            }
        );
    }

    #[test]
    fn cell_models_slot_resolution() {
        let cells = native_cells();
        // Single-input NOR resolves to the inverter cell's slot.
        assert_eq!(
            cells.slot_for(GateKind::Nor, 1, 1),
            cells.slot_for(GateKind::Inv, 1, 1)
        );
        // Arity rules.
        assert_eq!(cells.slot_for(GateKind::Nand, 3, 1), None);
        assert_eq!(cells.slot_for(GateKind::Nor, 4, 1), None);
        assert_eq!(cells.slot_for(GateKind::Xor, 2, 1), None);
        assert!(cells.slot_for(GateKind::Nor, 3, 1).is_some());
        // The legacy conversion binds NOR signatures only.
        let legacy = CellModels::nor_only(&models(0.05, 0.1, 0.2));
        assert_eq!(legacy.name(), "nor-only");
        assert_eq!(legacy.slots(), 4);
        assert_eq!(legacy.slot_for(GateKind::Inv, 1, 1), None);
        assert_eq!(legacy.slot_for(GateKind::Nor, 2, 1), Some(2));
        assert_eq!(legacy.slot_for(GateKind::Nor, 2, 3), Some(3));
    }

    #[test]
    fn undriven_nets_reported() {
        // Deserialization bypasses CircuitBuilder validation, so a net can
        // exist that nothing drives; the simulator must say so instead of
        // silently backfilling.
        let json = r#"{
            "net_names": ["a", "y", "ghost"],
            "inputs": [[0]],
            "outputs": [[1]],
            "gates": [{"kind": "Nor", "inputs": [[0]], "output": [1]}],
            "topo": [0],
            "levels": [[0]]
        }"#;
        let c: Circuit = serde_json::from_str(json).expect("circuit JSON");
        let ghost = c.find_net("ghost").unwrap();
        let mut stim = HashMap::new();
        stim.insert(c.find_net("a").unwrap(), rising_input());
        let res =
            simulate_sigmoid(&c, &stim, &models(0.05, 0.1, 0.2), TomOptions::default()).unwrap();
        assert_eq!(res.undriven(), &[ghost]);
        assert!(res.is_undriven(ghost));
        assert!(!res.is_undriven(c.find_net("y").unwrap()));
        // The fabricated trace is the documented constant-Low filler.
        assert_eq!(res.trace(ghost).initial(), Level::Low);
        assert!(res.trace(ghost).is_empty());
    }
}
