//! Randomized stimulus generation (Sec. V-B): "randomized transition
//! sequences with inter-transition times having a normal distribution,
//! given by µt, σt".

use rand::rngs::StdRng;
use rand::Rng;
use sigwave::{DigitalTrace, Level};

/// A stimulus family from Table I: mean/stddev of inter-transition times
/// and the number of transitions per input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StimulusSpec {
    /// Mean inter-transition time µt (seconds).
    pub mu: f64,
    /// Standard deviation σt (seconds).
    pub sigma: f64,
    /// Transitions per input.
    pub transitions: usize,
    /// Quiet time before the first transition (seconds), giving the analog
    /// substrate room to settle.
    pub start: f64,
    /// Minimum allowed inter-transition time (seconds); normal samples
    /// below this are clamped (the analog stimulus needs distinct ramps).
    pub min_gap: f64,
}

impl StimulusSpec {
    /// One of the paper's three setups: `(µt, σt)` in seconds with the
    /// matching transition count (20, 10 or 5 as in Table I).
    ///
    /// # Panics
    ///
    /// Panics if `mu` or `sigma` are not positive.
    #[must_use]
    pub fn new(mu: f64, sigma: f64, transitions: usize) -> Self {
        assert!(mu > 0.0 && sigma > 0.0, "mu and sigma must be positive");
        Self {
            mu,
            sigma,
            transitions,
            start: 60e-12,
            min_gap: 3e-12,
        }
    }

    /// Table I's `(20 ps, 10 ps)` setup with 20 transitions.
    #[must_use]
    pub fn fast() -> Self {
        Self::new(20e-12, 10e-12, 20)
    }

    /// Table I's `(100 ps, 50 ps)` setup with 10 transitions.
    #[must_use]
    pub fn medium() -> Self {
        Self::new(100e-12, 50e-12, 10)
    }

    /// Table I's `(500 ps, 250 ps)` setup with 5 transitions.
    #[must_use]
    pub fn slow() -> Self {
        Self::new(500e-12, 250e-12, 5)
    }

    /// All three Table I setups in paper order.
    #[must_use]
    pub fn table1() -> [StimulusSpec; 3] {
        [Self::fast(), Self::medium(), Self::slow()]
    }

    /// Draws one random stimulus trace starting from [`Level::Low`].
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> DigitalTrace {
        let mut t = self.start;
        let mut toggles = Vec::with_capacity(self.transitions);
        for _ in 0..self.transitions {
            let gap = normal(rng, self.mu, self.sigma).max(self.min_gap);
            t += gap;
            toggles.push(t);
        }
        DigitalTrace::new(Level::Low, toggles).expect("gaps are positive")
    }

    /// The expected end of activity (used to size simulation windows).
    #[must_use]
    pub fn expected_span(&self) -> f64 {
        self.start + self.transitions as f64 * (self.mu + 2.0 * self.sigma)
    }
}

/// A standard-normal draw via Box–Muller, scaled to `(mu, sigma)` — keeps
/// the dependency footprint to `rand` itself.
fn normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mu + sigma * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_has_requested_transitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = StimulusSpec::fast();
        let t = spec.sample(&mut rng);
        assert_eq!(t.len(), 20);
        assert_eq!(t.initial(), Level::Low);
        assert!(t.toggles()[0] >= spec.start);
    }

    #[test]
    fn gaps_respect_minimum() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = StimulusSpec::new(5e-12, 20e-12, 200); // wild sigma
        let t = spec.sample(&mut rng);
        let mut prev = 0.0;
        for &x in t.toggles() {
            assert!(x - prev >= spec.min_gap - 1e-18);
            prev = x;
        }
    }

    #[test]
    fn empirical_mean_matches_mu() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = StimulusSpec::new(100e-12, 10e-12, 2000);
        let t = spec.sample(&mut rng);
        let gaps: Vec<f64> = std::iter::once(spec.start)
            .chain(t.toggles().iter().copied())
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - 100e-12).abs() < 2e-12,
            "empirical mean {mean:.3e} too far from 100 ps"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = StimulusSpec::medium();
        let a = spec.sample(&mut StdRng::seed_from_u64(7));
        let b = spec.sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn table1_specs() {
        let specs = StimulusSpec::table1();
        assert_eq!(specs[0].transitions, 20);
        assert_eq!(specs[1].transitions, 10);
        assert_eq!(specs[2].transitions, 5);
        assert!((specs[2].mu - 500e-12).abs() < 1e-18);
    }
}
