//! The prototype sigmoidal circuit simulator and the Sec. V experiment
//! harness.
//!
//! This crate assembles the whole reproduction of *Signal Prediction for
//! Digital Circuits by Sigmoidal Approximations using Neural Networks*
//! (DATE 2025):
//!
//! * [`simulate_sigmoid`] — the prototype simulator: NOR-only circuits,
//!   sigmoid traces in, sigmoid traces out, with separate models for
//!   inverters, fan-out-1 and fan-out-≥2 NOR gates (Sec. V-A). The engine
//!   is levelized: gates are scheduled per ASAP level, their queries
//!   batched per model and fanned over the worker pool
//!   ([`simulate_sigmoid_with`] + [`SigmoidSimConfig`]; results are
//!   bit-identical at every setting — see `docs/architecture.md` § Levelized batched
//!   engine).
//! * [`CircuitProgram`] — the compile-once / execute-many engine core:
//!   [`CircuitProgram::compile`] resolves slots, validates gates and
//!   builds plan templates exactly once per `(circuit, cells, options)`;
//!   [`CircuitProgram::execute`] binds stimuli against the resident
//!   tables with a reusable [`SimScratch`] arena. The fused entry points
//!   above are thin wrappers and stay bit-identical (see
//!   `docs/architecture.md` § Compile/execute split).
//! * [`IncrementalState`] — the event-driven incremental engine:
//!   [`CircuitProgram::open_session`] captures a full execution,
//!   [`CircuitProgram::execute_delta`] applies [`StimulusEdit`] batches
//!   by re-simulating only the affected cone, bit-identical to a cold
//!   full execution of the final stimuli (see `docs/architecture.md`
//!   § Incremental engine).
//! * [`train_models`]/[`train_models_cached`] — the end-to-end pipeline:
//!   analog characterization sweeps → waveform fitting → four ANNs per
//!   gate variant → valid regions.
//! * [`StimulusSpec`] — Table I's randomized stimuli (normal
//!   inter-transition times).
//! * [`compare_circuit`] — the three-way comparison: analog reference,
//!   digital baseline with extracted inertial delays, sigmoid prototype;
//!   produces `t_err` totals, wall-clock times and per-output traces.
//!
//! # Example
//!
//! Training is expensive; see `examples/quickstart.rs` for the full
//! pipeline. Simulating with an already-built model:
//!
//! ```
//! use std::collections::HashMap;
//! use std::sync::Arc;
//! use sigsim::{simulate_sigmoid, GateModels};
//! use sigcircuit::{CircuitBuilder, GateKind};
//! use sigtom::{GateModel, TomOptions, TransferFunction,
//!              TransferPrediction, TransferQuery};
//! use sigwave::{Level, Sigmoid, SigmoidTrace, VDD_DEFAULT};
//!
//! struct Fixed;
//! impl TransferFunction for Fixed {
//!     fn predict(&self, q: TransferQuery) -> TransferPrediction {
//!         TransferPrediction { a_out: -q.a_in.signum() * 14.0, delay: 0.06 }
//!     }
//!     fn backend_name(&self) -> &'static str { "fixed" }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new();
//! let a = b.add_input("a");
//! let y = b.add_gate(GateKind::Nor, &[a], "y");
//! b.mark_output(y);
//! let circuit = b.build()?;
//!
//! let models = GateModels::uniform(GateModel::new(Arc::new(Fixed)));
//! let mut stimuli = HashMap::new();
//! // Stimuli are shared by reference (`Arc`), never cloned per run.
//! stimuli.insert(a, Arc::new(SigmoidTrace::from_transitions(
//!     Level::Low, vec![Sigmoid::rising(12.0, 1.0)], VDD_DEFAULT)?));
//! let result = simulate_sigmoid(&circuit, &stimuli, &models, TomOptions::default())?;
//! assert_eq!(result.trace(y).len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod models;
mod simulator;
mod stimulus;

pub use harness::{
    compare_circuit, compare_circuit_cells, compare_circuit_monte_carlo,
    compare_circuit_monte_carlo_cells, constant_stimuli, digital_to_sigmoid, final_levels_agree,
    random_stimuli, ComparisonOutcome, HarnessConfig, HarnessError, McStats, McSummary,
    MonteCarloConfig, SigmoidInputMode, TraceBundle, SAME_STIMULUS_SLOPE,
};
pub use models::{
    native_cache_path, train_cell_library, train_cell_library_cached, train_models,
    train_models_cached, CellLibrary, LibrarySpec, PipelineConfig, PipelineError, StoredModel,
    TrainedModels,
};
pub use simulator::{
    simulate_cells_with, simulate_sigmoid, simulate_sigmoid_with, CellModels, CircuitProgram,
    FleetScratch, GateModels, IncrementalState, SigmoidSimConfig, SigmoidSimError,
    SigmoidSimResult, SimScratch, StimulusEdit, MODEL_SLOTS,
};
pub use stimulus::StimulusSpec;

// Compile-time audit: everything the `sigserve` registry shares across
// long-lived worker threads (`Arc<TrainedModels>`, `Arc<GateModels>`, the
// harness inputs and outputs) must be `Send + Sync`. `GateModels` holds
// `Arc<dyn TransferFunction + Send + Sync>` transfer backends, so the
// bounds propagate to every implementation; a regression (e.g. an `Rc` or
// `RefCell` slipping into a model) fails compilation here rather than
// deep inside the service.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GateModels>();
    assert_send_sync::<CellModels>();
    assert_send_sync::<CircuitProgram>();
    assert_send_sync::<SimScratch>();
    assert_send_sync::<FleetScratch>();
    assert_send_sync::<IncrementalState>();
    assert_send_sync::<StimulusEdit>();
    assert_send_sync::<CellLibrary>();
    assert_send_sync::<TrainedModels>();
    assert_send_sync::<SigmoidSimResult>();
    assert_send_sync::<ComparisonOutcome>();
    assert_send_sync::<McSummary>();
    assert_send_sync::<HarnessConfig>();
    assert_send_sync::<StimulusSpec>();
    assert_send_sync::<sigcircuit::Circuit>();
    assert_send_sync::<sigchar::DelayTable>();
    assert_send_sync::<sigwave::SigmoidTrace>();
};
