//! Value-change-dump (VCD) export, so traces — including `sigserve`
//! responses — can be inspected in standard waveform viewers (GTKWave,
//! Surfer, …).
//!
//! The dump is digital: a [`SigmoidTrace`] is digitized at a caller-chosen
//! threshold first ([`VcdSignal::sigmoid`]), which is exactly the `VDD/2`
//! reading a viewer of the analog waveform would take. Output is
//! deterministic (no date/version stamps beyond a fixed tool tag), so
//! dumps are diffable and usable as golden files.

use std::io::{self, Write};

use crate::{DigitalTrace, Level, SigmoidTrace};

/// Timescale of the dump: all toggle times are rounded to femtoseconds,
/// comfortably below every timing quantity in the workspace (picosecond
/// gate delays).
const TIMESCALE: &str = "1fs";
const SECONDS_PER_TICK: f64 = 1e-15;

/// One named signal scheduled for a VCD dump.
#[derive(Debug, Clone)]
pub struct VcdSignal {
    name: String,
    trace: DigitalTrace,
}

impl VcdSignal {
    /// A signal from a digital trace.
    #[must_use]
    pub fn digital(name: impl Into<String>, trace: &DigitalTrace) -> Self {
        Self {
            name: sanitize(&name.into()),
            trace: trace.clone(),
        }
    }

    /// A signal from a sigmoid trace, digitized at `threshold` volts.
    #[must_use]
    pub fn sigmoid(name: impl Into<String>, trace: &SigmoidTrace, threshold: f64) -> Self {
        Self {
            name: sanitize(&name.into()),
            trace: trace.digitize(threshold),
        }
    }

    /// The signal name as it will appear in the dump.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The digitized trace backing the signal.
    #[must_use]
    pub fn trace(&self) -> &DigitalTrace {
        &self.trace
    }
}

/// VCD identifier codes are printable ASCII `!`..`~`; one or more chars.
fn id_code(mut index: usize) -> String {
    const FIRST: u8 = b'!';
    const RADIX: usize = 94; // printable ASCII
    let mut code = Vec::new();
    loop {
        code.push(FIRST + (index % RADIX) as u8);
        index /= RADIX;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    String::from_utf8(code).expect("printable ASCII")
}

/// VCD identifiers must not contain whitespace; replace anything outside
/// the conventional identifier set so viewers accept the dump.
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '[' | ']') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

fn level_char(level: Level) -> char {
    if level.is_high() {
        '1'
    } else {
        '0'
    }
}

/// Writes the signals as one VCD module scope (`top`).
///
/// Toggle times are rounded to the femtosecond grid; toggles of one signal
/// that land on the same tick after rounding collapse viewer-side, so
/// femtosecond resolution is deliberately far below any real spacing.
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write_vcd<W: Write>(out: &mut W, signals: &[VcdSignal]) -> io::Result<()> {
    writeln!(out, "$comment sigwave dump $end")?;
    writeln!(out, "$timescale {TIMESCALE} $end")?;
    writeln!(out, "$scope module top $end")?;
    for (i, s) in signals.iter().enumerate() {
        writeln!(out, "$var wire 1 {} {} $end", id_code(i), s.name)?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    // Initial values.
    writeln!(out, "$dumpvars")?;
    for (i, s) in signals.iter().enumerate() {
        writeln!(out, "{}{}", level_char(s.trace.initial()), id_code(i))?;
    }
    writeln!(out, "$end")?;

    // Merge all toggle events in time order (ties broken by signal index
    // so output is deterministic).
    let mut events: Vec<(u64, usize, Level)> = Vec::new();
    for (i, s) in signals.iter().enumerate() {
        let mut level = s.trace.initial();
        for &t in s.trace.toggles() {
            level = level.inverted();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let tick = (t / SECONDS_PER_TICK).round().max(0.0) as u64;
            events.push((tick, i, level));
        }
    }
    events.sort_unstable_by_key(|&(tick, i, _)| (tick, i));
    let mut current: Option<u64> = None;
    for (tick, i, level) in events {
        if current != Some(tick) {
            writeln!(out, "#{tick}")?;
            current = Some(tick);
        }
        writeln!(out, "{}{}", level_char(level), id_code(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sigmoid, VDD_DEFAULT};

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.bytes().all(|b| (b'!'..=b'~').contains(&b)), "{code}");
            assert!(seen.insert(code), "duplicate id for {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94).len(), 2);
    }

    #[test]
    fn dump_contains_header_and_events() {
        let a = DigitalTrace::new(Level::Low, vec![1e-10, 3e-10]).unwrap();
        let b = DigitalTrace::new(Level::High, vec![2e-10]).unwrap();
        let mut out = Vec::new();
        write_vcd(
            &mut out,
            &[VcdSignal::digital("a", &a), VcdSignal::digital("net b", &b)],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$timescale 1fs $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        // Whitespace in names is sanitized.
        assert!(text.contains("$var wire 1 \" net_b $end"));
        // Initial values then time-ordered changes (100 ps = 1e5 fs).
        assert!(text.contains("$dumpvars\n0!\n1\"\n$end"));
        let i100 = text.find("#100000\n1!").expect("rise of a at 100 ps");
        let i200 = text.find("#200000\n0\"").expect("fall of b at 200 ps");
        let i300 = text.find("#300000\n0!").expect("fall of a at 300 ps");
        assert!(i100 < i200 && i200 < i300, "events must be time-ordered");
    }

    #[test]
    fn sigmoid_signals_are_digitized_at_threshold() {
        let t = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(20.0, 1.0), Sigmoid::falling(20.0, 4.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        let s = VcdSignal::sigmoid("y", &t, VDD_DEFAULT / 2.0);
        assert_eq!(s.trace().len(), 2);
        let mut out = Vec::new();
        write_vcd(&mut out, &[s]).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Crossings at 100 ps and 400 ps on the femtosecond grid.
        assert!(text.contains("#100000\n1!"), "{text}");
        assert!(text.contains("#400000\n0!"), "{text}");
    }

    #[test]
    fn deterministic_output() {
        let a = DigitalTrace::new(Level::Low, vec![5e-11]).unwrap();
        let sigs = [VcdSignal::digital("x", &a)];
        let mut one = Vec::new();
        let mut two = Vec::new();
        write_vcd(&mut one, &sigs).unwrap();
        write_vcd(&mut two, &sigs).unwrap();
        assert_eq!(one, two);
    }

    #[test]
    fn empty_signal_list_still_valid() {
        let mut out = Vec::new();
        write_vcd(&mut out, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$enddefinitions"));
    }
}
