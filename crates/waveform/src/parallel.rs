//! A scoped worker-pool layer for the workspace's embarrassingly parallel
//! hot paths: characterization sweeps (`sigchar`), per-network ANN
//! training (`sigtom`), and multi-seed Monte-Carlo comparisons (`sigsim`).
//!
//! Design constraints:
//!
//! * **Determinism** — results are returned in item order and every work
//!   item owns its inputs (callers seed per-item RNGs), so output is
//!   bit-identical regardless of the worker count.
//! * **No dependencies** — plain `std::thread::scope` with an atomic
//!   work-stealing cursor; no unsafe, no channels.
//! * **Config-gated** — callers expose a `parallelism: usize` knob
//!   defaulting to [`available_parallelism`]; `0` means "auto" and `1`
//!   falls back to a plain sequential loop on the calling thread.
//!
//! Two execution styles share these constraints:
//!
//! * [`par_map`]/[`try_par_map`] — scoped fork-join over a slice, workers
//!   live for one call. Right for batch jobs that own their full input.
//! * [`WorkerPool`] — a long-lived handle over resident worker threads
//!   with a bounded job queue, for callers that receive work over time
//!   (the `sigserve` request scheduler). Jobs are `'static` closures;
//!   rejection ([`WorkerPool::try_execute`]) instead of blocking gives
//!   the caller explicit backpressure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The default worker count: the hardware's available parallelism (falls
/// back to 1 when the runtime cannot tell).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a `parallelism` config knob: `0` means "auto" (use
/// [`available_parallelism`]), anything else is taken literally.
#[must_use]
pub fn resolve_parallelism(configured: usize) -> usize {
    if configured == 0 {
        available_parallelism()
    } else {
        configured
    }
}

/// Maps `f` over `items` on up to `parallelism` scoped worker threads,
/// returning results in item order.
///
/// `f` receives `(index, &item)`. With `parallelism <= 1` (after `0` is
/// resolved to the hardware count) or fewer than two items, the map runs
/// sequentially on the calling thread — the deterministic baseline the
/// parallel path must match.
///
/// # Panics
///
/// Propagates panics from `f` after all workers have stopped.
pub fn par_map<T, R, F>(parallelism: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Infallible bodies share the fallible engine below.
    match try_par_map(parallelism, items, |i, item| {
        Ok::<R, std::convert::Infallible>(f(i, item))
    }) {
        Ok(results) => results,
        Err(infallible) => match infallible {},
    }
}

/// Like [`par_map`] but for fallible work: returns the lowest-index error
/// if any item fails, and stops handing out new work as soon as an error
/// is observed.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item (deterministic
/// regardless of worker count or scheduling).
///
/// # Panics
///
/// Propagates panics from `f` after all workers have stopped.
pub fn try_par_map<T, R, E, F>(parallelism: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = resolve_parallelism(parallelism).min(n);
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Stops the pool when a work item panics (mirroring the prompt-abort
    // behavior of the `Err` path): armed before `f` runs, disarmed after —
    // an unwinding `f` leaves it armed and the drop sets the flag.
    struct PanicAbort<'a>(&'a AtomicBool, bool);
    impl Drop for PanicAbort<'_> {
        fn drop(&mut self) {
            if self.1 {
                self.0.store(true, Ordering::Relaxed);
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut guard = PanicAbort(&abort, true);
                let result = f(i, &items[i]);
                guard.1 = false;
                if result.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    // Indices are handed out in order, so every index below the first
    // error's has been computed: scanning in order yields the lowest-index
    // error deterministically.
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => results.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("slot skipped without a preceding error"),
        }
    }
    Ok(results)
}

/// A job submitted to a [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue depth observed at each enqueue (jobs pending after the push).
static QUEUE_DEPTH: sigobs::Hist = sigobs::Hist::new("pool.queue_depth");
/// Nanoseconds a job sat queued before a worker dequeued it.
static QUEUE_WAIT: sigobs::Hist = sigobs::Hist::new("pool.queue_wait");

/// A queued job plus the stopwatch measuring its time in the queue
/// (inert — no clock read — unless `sigobs` is counting).
struct QueuedJob {
    job: Job,
    queued: sigobs::Stopwatch,
}

/// Error returned by [`WorkerPool::try_execute`] when the bounded queue is
/// at capacity — the caller must shed load (the service layer maps this to
/// an `overloaded` protocol error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFull;

impl std::fmt::Display for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker pool queue is full")
    }
}

impl std::error::Error for PoolFull {}

struct PoolState {
    jobs: VecDeque<QueuedJob>,
    /// Jobs currently executing on a worker (dequeued but not finished).
    active: usize,
    /// Set once; workers exit after the queue drains.
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is pushed or shutdown begins (wakes workers).
    work: Condvar,
    /// Signalled when a job finishes or the queue empties (wakes
    /// [`WorkerPool::drain`] and capacity waiters).
    settled: Condvar,
    capacity: usize,
    /// Jobs that unwound instead of returning (see
    /// [`WorkerPool::panicked_jobs`]).
    panicked: AtomicUsize,
}

/// A long-lived pool of resident worker threads with a bounded job queue.
///
/// Unlike [`par_map`], which spawns scoped workers per call, a
/// `WorkerPool` is created once and fed jobs over time — the execution
/// substrate for long-running processes such as the `sigserve` daemon,
/// where per-request thread spawning (or per-request scoped pools) would
/// pay setup costs on every request and provide no backpressure.
///
/// * **Bounded** — [`WorkerPool::try_execute`] rejects with [`PoolFull`]
///   when `capacity` jobs are already queued (running jobs do not count);
///   the caller decides whether to retry, block or shed.
/// * **Graceful shutdown** — [`WorkerPool::shutdown`] (also run on drop)
///   lets queued and running jobs finish, then joins every worker; no job
///   that was accepted is ever dropped.
/// * **Deterministic effects** — jobs run exactly once, in FIFO dequeue
///   order per worker; result ordering across workers is the caller's
///   concern (the service layer tags responses with request ids).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().expect("pool state poisoned");
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .field("queued", &state.jobs.len())
            .field("active", &state.active)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` resident threads (`0` = auto-detect via
    /// [`available_parallelism`]) whose job queue holds at most `capacity`
    /// pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a pool that can accept nothing) or if
    /// the OS refuses to spawn threads.
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        let workers = resolve_parallelism(workers).max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                active: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            settled: Condvar::new(),
            capacity,
            panicked: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sigwave-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet started (excludes running jobs).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .jobs
            .len()
    }

    /// Number of jobs that panicked instead of completing. Workers survive
    /// job panics (the unwind is caught so one bad request cannot take the
    /// pool down); callers that need hard failure should check this.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Submits a job unless the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns [`PoolFull`] (without consuming the job slot) when
    /// `capacity` jobs are already pending — the backpressure signal.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        assert!(!state.shutting_down, "execute on a shut-down pool");
        if state.jobs.len() >= self.shared.capacity {
            return Err(PoolFull);
        }
        state.jobs.push_back(QueuedJob {
            job: Box::new(job),
            queued: sigobs::stopwatch(),
        });
        QUEUE_DEPTH.record(state.jobs.len() as u64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Submits a job, blocking while the queue is at capacity.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        while state.jobs.len() >= self.shared.capacity {
            assert!(!state.shutting_down, "execute on a shut-down pool");
            state = self
                .shared
                .settled
                .wait(state)
                .expect("pool state poisoned");
        }
        assert!(!state.shutting_down, "execute on a shut-down pool");
        state.jobs.push_back(QueuedJob {
            job: Box::new(job),
            queued: sigobs::stopwatch(),
        });
        QUEUE_DEPTH.record(state.jobs.len() as u64);
        drop(state);
        self.shared.work.notify_one();
    }

    /// Blocks until every queued and running job has finished (the pool
    /// stays usable afterwards — this is a barrier, not a shutdown).
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        while !state.jobs.is_empty() || state.active > 0 {
            state = self
                .shared
                .settled
                .wait(state)
                .expect("pool state poisoned");
        }
    }

    /// Graceful shutdown: stops accepting work, lets queued and running
    /// jobs finish, and joins every worker thread. Dropping the pool does
    /// the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            if state.shutting_down && self.workers.is_empty() {
                return;
            }
            state.shutting_down = true;
        }
        self.shared.work.notify_all();
        // A job may own the last handle to the pool's owner (e.g. an
        // `Arc<Service>` captured in a response closure), making a worker
        // thread run this drop path itself. It cannot join itself —
        // detach that handle instead; the worker exits right after the
        // current job because `shutting_down` is set.
        let me = std::thread::current().id();
        for handle in self.workers.drain(..) {
            if handle.thread().id() == me {
                drop(handle);
            } else {
                handle.join().expect("pool worker panicked");
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(queued) = state.jobs.pop_front() {
                    state.active += 1;
                    queued.queued.observe_span(&QUEUE_WAIT, "pool.queue_wait");
                    break queued.job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work.wait(state).expect("pool state poisoned");
            }
        };
        // The dequeue freed a queue slot: wake blocked `execute` callers.
        shared.settled.notify_all();
        // A panicking job must not take the worker (or a later
        // `drain`/`shutdown`) down with it: catch the unwind, count it,
        // and keep serving. The guard keeps `active` accurate on every
        // exit path.
        struct ActiveGuard<'a>(&'a PoolShared);
        impl Drop for ActiveGuard<'_> {
            fn drop(&mut self) {
                let mut state = self.0.state.lock().expect("pool state poisoned");
                state.active -= 1;
                drop(state);
                self.0.settled.notify_all();
            }
        }
        let guard = ActiveGuard(shared);
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<usize> = (0..97).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for parallelism in [0, 1, 2, 3, 8] {
            let par = par_map(parallelism, &items, |_, &x| x * x);
            assert_eq!(par, seq, "parallelism {parallelism}");
        }
    }

    #[test]
    fn passes_item_indices() {
        let items = vec!["a", "b", "c"];
        let idx = par_map(4, &items, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        for parallelism in [1, 2, 8] {
            let got: Result<Vec<usize>, usize> = try_par_map(parallelism, &items, |_, &x| {
                if x == 13 || x == 40 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
            assert_eq!(got.unwrap_err(), 13, "parallelism {parallelism}");
        }
    }

    #[test]
    fn uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..256).collect();
        par_map(4, &items, |_, _| {
            seen.lock()
                .expect("lock")
                .insert(std::thread::current().id());
            // Enough work that all workers get scheduled.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(
            seen.lock().expect("lock").len() > 1,
            "expected work on more than one thread"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_runs_every_accepted_job_exactly_once() {
        let pool = WorkerPool::new(3, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        // The pool stays usable after a drain.
        let counter2 = Arc::clone(&counter);
        pool.execute(move || {
            counter2.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 51);
    }

    #[test]
    fn pool_rejects_when_queue_full() {
        // One worker stuck on a gate job; capacity 2 fills after two more.
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().expect("gate");
            while !*open {
                open = cv.wait(open).expect("gate");
            }
        });
        // Wait until the gate job occupies the worker (queue empty again).
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        assert!(pool.try_execute(|| {}).is_ok());
        assert!(pool.try_execute(|| {}).is_ok());
        assert_eq!(pool.try_execute(|| {}), Err(PoolFull));
        // Open the gate; everything drains and capacity frees up.
        {
            let (lock, cv) = &*gate;
            *lock.lock().expect("gate") = true;
            cv.notify_all();
        }
        pool.drain();
        assert!(pool.try_execute(|| {}).is_ok());
        pool.drain();
    }

    #[test]
    fn pool_survives_job_panics() {
        let pool = WorkerPool::new(2, 16);
        pool.execute(|| panic!("bad request"));
        pool.drain();
        assert_eq!(pool.panicked_jobs(), 1);
        // The pool still runs jobs afterwards.
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.execute(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_drop_is_graceful() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 64);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropped with jobs possibly still queued: all must finish.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
