//! A scoped worker-pool layer for the workspace's embarrassingly parallel
//! hot paths: characterization sweeps (`sigchar`), per-network ANN
//! training (`sigtom`), and multi-seed Monte-Carlo comparisons (`sigsim`).
//!
//! Design constraints:
//!
//! * **Determinism** — results are returned in item order and every work
//!   item owns its inputs (callers seed per-item RNGs), so output is
//!   bit-identical regardless of the worker count.
//! * **No dependencies** — plain `std::thread::scope` with an atomic
//!   work-stealing cursor; no unsafe, no channels.
//! * **Config-gated** — callers expose a `parallelism: usize` knob
//!   defaulting to [`available_parallelism`]; `0` means "auto" and `1`
//!   falls back to a plain sequential loop on the calling thread.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the hardware's available parallelism (falls
/// back to 1 when the runtime cannot tell).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a `parallelism` config knob: `0` means "auto" (use
/// [`available_parallelism`]), anything else is taken literally.
#[must_use]
pub fn resolve_parallelism(configured: usize) -> usize {
    if configured == 0 {
        available_parallelism()
    } else {
        configured
    }
}

/// Maps `f` over `items` on up to `parallelism` scoped worker threads,
/// returning results in item order.
///
/// `f` receives `(index, &item)`. With `parallelism <= 1` (after `0` is
/// resolved to the hardware count) or fewer than two items, the map runs
/// sequentially on the calling thread — the deterministic baseline the
/// parallel path must match.
///
/// # Panics
///
/// Propagates panics from `f` after all workers have stopped.
pub fn par_map<T, R, F>(parallelism: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Infallible bodies share the fallible engine below.
    match try_par_map(parallelism, items, |i, item| {
        Ok::<R, std::convert::Infallible>(f(i, item))
    }) {
        Ok(results) => results,
        Err(infallible) => match infallible {},
    }
}

/// Like [`par_map`] but for fallible work: returns the lowest-index error
/// if any item fails, and stops handing out new work as soon as an error
/// is observed.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item (deterministic
/// regardless of worker count or scheduling).
///
/// # Panics
///
/// Propagates panics from `f` after all workers have stopped.
pub fn try_par_map<T, R, E, F>(parallelism: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = resolve_parallelism(parallelism).min(n);
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Stops the pool when a work item panics (mirroring the prompt-abort
    // behavior of the `Err` path): armed before `f` runs, disarmed after —
    // an unwinding `f` leaves it armed and the drop sets the flag.
    struct PanicAbort<'a>(&'a AtomicBool, bool);
    impl Drop for PanicAbort<'_> {
        fn drop(&mut self) {
            if self.1 {
                self.0.store(true, Ordering::Relaxed);
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut guard = PanicAbort(&abort, true);
                let result = f(i, &items[i]);
                guard.1 = false;
                if result.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    // Indices are handed out in order, so every index below the first
    // error's has been computed: scanning in order yields the lowest-index
    // error deterministically.
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => results.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("slot skipped without a preceding error"),
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<usize> = (0..97).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for parallelism in [0, 1, 2, 3, 8] {
            let par = par_map(parallelism, &items, |_, &x| x * x);
            assert_eq!(par, seq, "parallelism {parallelism}");
        }
    }

    #[test]
    fn passes_item_indices() {
        let items = vec!["a", "b", "c"];
        let idx = par_map(4, &items, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        for parallelism in [1, 2, 8] {
            let got: Result<Vec<usize>, usize> = try_par_map(parallelism, &items, |_, &x| {
                if x == 13 || x == 40 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
            assert_eq!(got.unwrap_err(), 13, "parallelism {parallelism}");
        }
    }

    #[test]
    fn uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..256).collect();
        par_map(4, &items, |_, _| {
            seen.lock()
                .expect("lock")
                .insert(std::thread::current().id());
            // Enough work that all workers get scheduled.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(
            seen.lock().expect("lock").len() > 1,
            "expected work on more than one thread"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
