//! The single-transition logistic model function `Fs` of Eq. 1.

use serde::{Deserialize, Serialize};

use crate::{to_scaled_time, to_seconds};

/// A single sigmoidal transition (Eq. 1 of the paper):
///
/// `Fs(t, a, b) = 1 / (1 + exp(-a (t·10^10 - b)))`
///
/// * `a` controls the slope and the polarity: `a > 0` is a rising transition
///   (0 → 1), `a < 0` a falling transition (1 → 0).
/// * `b` is the threshold-crossing time in scaled units (100 ps), i.e. the
///   instant at which the transition crosses 50 %.
///
/// # Example
///
/// ```
/// use sigwave::Sigmoid;
/// let s = Sigmoid::new(10.0, 2.0); // rising, crossing 50% at 200 ps
/// assert!((s.eval_seconds(2.0e-10) - 0.5).abs() < 1e-12);
/// assert!(s.is_rising());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sigmoid {
    /// Slope parameter. Positive: rising transition; negative: falling.
    pub a: f64,
    /// Threshold-crossing time in scaled units (`t · 10^10`, i.e. 100 ps).
    pub b: f64,
}

impl Sigmoid {
    /// Creates a sigmoid from its slope `a` and scaled crossing time `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` or either parameter is not finite: a zero-slope
    /// "transition" never switches and cannot appear in a valid trace.
    #[must_use]
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a != 0.0, "sigmoid slope must be non-zero");
        assert!(a.is_finite() && b.is_finite(), "parameters must be finite");
        Self { a, b }
    }

    /// Creates a rising sigmoid (`|a|`) crossing 50 % at `b` scaled units.
    #[must_use]
    pub fn rising(a_magnitude: f64, b: f64) -> Self {
        Self::new(a_magnitude.abs(), b)
    }

    /// Creates a falling sigmoid (`-|a|`) crossing 50 % at `b` scaled units.
    #[must_use]
    pub fn falling(a_magnitude: f64, b: f64) -> Self {
        Self::new(-a_magnitude.abs(), b)
    }

    /// `true` if the transition is rising (`a > 0`).
    #[must_use]
    pub fn is_rising(&self) -> bool {
        self.a > 0.0
    }

    /// The crossing time in seconds (where the sigmoid reaches 50 %).
    #[must_use]
    pub fn crossing_seconds(&self) -> f64 {
        to_seconds(self.b)
    }

    /// Evaluates `Fs` at a scaled time `x = t · 10^10`.
    ///
    /// Numerically robust for large `|a (x - b)|` (saturates to 0 or 1
    /// without producing NaN).
    #[must_use]
    pub fn eval_scaled(&self, x: f64) -> f64 {
        let z = self.a * (x - self.b);
        // Stable logistic: avoid exp overflow for very negative z.
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Evaluates `Fs` at a time in seconds.
    #[must_use]
    pub fn eval_seconds(&self, t: f64) -> f64 {
        self.eval_scaled(to_scaled_time(t))
    }

    /// Derivative `dFs/dx` at scaled time `x` (per scaled time unit).
    ///
    /// The logistic derivative is `a · Fs · (1 - Fs)`; its magnitude peaks at
    /// `|a| / 4` at the inflection point `x = b`.
    #[must_use]
    pub fn derivative_scaled(&self, x: f64) -> f64 {
        let f = self.eval_scaled(x);
        self.a * f * (1.0 - f)
    }

    /// Derivative `dFs/dt` at a time in seconds (per second).
    #[must_use]
    pub fn derivative_seconds(&self, t: f64) -> f64 {
        self.derivative_scaled(to_scaled_time(t)) * crate::TIME_SCALE
    }

    /// The scaled time at which the sigmoid reaches `level ∈ (0, 1)`.
    ///
    /// Solving `Fs(x) = level` gives `x = b - ln(1/level - 1) / a`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside the open interval `(0, 1)` — the
    /// logistic function only attains those values in the limit.
    #[must_use]
    pub fn time_at_level_scaled(&self, level: f64) -> f64 {
        assert!(
            level > 0.0 && level < 1.0,
            "level must be strictly between 0 and 1, got {level}"
        );
        self.b - ((1.0 / level - 1.0).ln()) / self.a
    }

    /// The time in seconds at which the sigmoid reaches `level ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `(0, 1)`.
    #[must_use]
    pub fn time_at_level_seconds(&self, level: f64) -> f64 {
        to_seconds(self.time_at_level_scaled(level))
    }

    /// The 20 %–80 % transition duration in seconds (a common slope measure
    /// in gate characterization; for a logistic this is `2 ln 4 / |a|`
    /// scaled units).
    #[must_use]
    pub fn transition_time_20_80(&self) -> f64 {
        let lo = self.time_at_level_scaled(0.2);
        let hi = self.time_at_level_scaled(0.8);
        to_seconds((hi - lo).abs())
    }

    /// Finds the extremum of the *pair sum* `Fs(self) + Fs(other)` on the
    /// pulse formed by this transition followed by `other` of the opposite
    /// polarity, as needed for the sub-threshold pulse check of Sec. III.
    ///
    /// For a rising/falling pair the sum is unimodal with a maximum between
    /// the two crossing times; for falling/rising it has a minimum. Returns
    /// the location (scaled time) and value of that extremum, found by
    /// golden-section search on `[b₁ - w, b₂ + w]`.
    ///
    /// # Panics
    ///
    /// Panics if both sigmoids have the same polarity: a "pulse" requires
    /// opposite transitions.
    #[must_use]
    pub fn pair_extremum(&self, other: &Sigmoid) -> PairExtremum {
        assert!(
            self.is_rising() != other.is_rising(),
            "pulse pair must have opposite polarities"
        );
        let maximize = self.is_rising();
        // Window: extend a few slope widths beyond the crossings.
        let w1 = 10.0 / self.a.abs();
        let w2 = 10.0 / other.a.abs();
        let (mut lo, mut hi) = (self.b.min(other.b) - w1, self.b.max(other.b) + w2);
        let f = |x: f64| {
            let v = self.eval_scaled(x) + other.eval_scaled(x);
            if maximize {
                v
            } else {
                -v
            }
        };
        const INV_PHI: f64 = 0.618_033_988_749_894_8;
        let mut c = hi - (hi - lo) * INV_PHI;
        let mut d = lo + (hi - lo) * INV_PHI;
        let (mut fc, mut fd) = (f(c), f(d));
        for _ in 0..200 {
            if (hi - lo).abs() < 1e-12 {
                break;
            }
            if fc > fd {
                hi = d;
                d = c;
                fd = fc;
                c = hi - (hi - lo) * INV_PHI;
                fc = f(c);
            } else {
                lo = c;
                c = d;
                fc = fd;
                d = lo + (hi - lo) * INV_PHI;
                fd = f(d);
            }
        }
        let x = 0.5 * (lo + hi);
        PairExtremum {
            scaled_time: x,
            sum: self.eval_scaled(x) + other.eval_scaled(x),
            is_maximum: maximize,
        }
    }

    /// Answers the only question the sub-threshold pulse check asks of
    /// [`Sigmoid::pair_extremum`]: does the pulse sum cross `threshold`
    /// (exceed it for a rising/falling pair's maximum, fall below it for
    /// a falling/rising pair's minimum)?
    ///
    /// For the canonical half-swing thresholds (`1.5` for a maximum,
    /// `0.5` for a minimum — anything at least one half-swing away from
    /// the settled rails) the decision is made by branch-and-bound
    /// instead of the golden-section search. A falling/rising pair first
    /// reflects to the rising/falling form via `σ(-z) = 1 - σ(z)`
    /// (`min S < thr  ⟺  max (2 - S) > 2 - thr`). Then, writing `r` for
    /// the rising and `f` for the falling transition:
    ///
    /// * outside `(r.b, f.b)` one of the two logistics is below its
    ///   crossing point, so `S < 1.5` and the threshold is unreachable —
    ///   only that interval needs searching (and `f.b ≤ r.b` decides
    ///   `false` outright);
    /// * on any segment `[l, u]`, monotonicity gives the sound bound
    ///   `S ≤ σ_r(u) + σ_f(l)`: a segment whose bound stays at or below
    ///   the threshold is discarded whole;
    /// * any sample with `S > thr` is a witness: the maximum is at least
    ///   every sample.
    ///
    /// Narrow sub-threshold pulses discard the whole interval after a
    /// handful of evaluations and wide visible pulses find a witness just
    /// as fast, so the common cases cost a few logistic evaluations
    /// instead of the search's hundreds. Only near-threshold pulses
    /// recurse, and a work cap falls back to [`Sigmoid::pair_extremum`]
    /// (as does a non-canonical threshold), so the decision always
    /// terminates.
    ///
    /// # Panics
    ///
    /// Panics if both sigmoids have the same polarity, as in
    /// [`Sigmoid::pair_extremum`].
    #[must_use]
    pub fn pair_crosses(&self, other: &Sigmoid, threshold: f64) -> bool {
        assert!(
            self.is_rising() != other.is_rising(),
            "pulse pair must have opposite polarities"
        );
        // Reduce to the maximum form: rising `r` followed by falling `f`.
        let (r, f, thr) = if self.is_rising() {
            (*self, *other, threshold)
        } else {
            (
                Sigmoid {
                    a: -self.a,
                    b: self.b,
                },
                Sigmoid {
                    a: -other.a,
                    b: other.b,
                },
                2.0 - threshold,
            )
        };
        if thr < 1.5 {
            // Below the canonical threshold the tail argument no longer
            // holds; answer with the search.
            return self.decide_by_extremum(other, threshold);
        }
        let (lo, hi) = (r.b, f.b);
        if hi <= lo {
            // The logistics never overlap above their crossing points:
            // S < 1.5 ≤ thr everywhere.
            return false;
        }
        let (sr_lo, sr_hi) = (r.eval_scaled(lo), r.eval_scaled(hi));
        let (sf_lo, sf_hi) = (f.eval_scaled(lo), f.eval_scaled(hi));
        if sr_lo + sf_lo > thr || sr_hi + sf_hi > thr {
            return true;
        }
        if sr_hi + sf_lo <= thr {
            // Whole-interval bound: the pulse cannot reach the threshold.
            return false;
        }
        // Branch-and-bound over segments (l, u, σr(l), σr(u), σf(l), σf(u)).
        let mut stack: Vec<(f64, f64, f64, f64, f64, f64)> = Vec::with_capacity(16);
        stack.push((lo, hi, sr_lo, sr_hi, sf_lo, sf_hi));
        let mut evals = 0usize;
        while let Some((l, u, srl, sru, sfl, sfu)) = stack.pop() {
            if u - l < 1e-12 {
                // Narrower than the search's own convergence window and
                // still no witness: treat as not crossing.
                continue;
            }
            evals += 1;
            if evals > 256 {
                // Near-threshold plateau: hand the call to the search
                // rather than refining indefinitely.
                return self.decide_by_extremum(other, threshold);
            }
            let m = 0.5 * (l + u);
            let (srm, sfm) = (r.eval_scaled(m), f.eval_scaled(m));
            if srm + sfm > thr {
                return true;
            }
            if srm + sfl > thr {
                stack.push((l, m, srl, srm, sfl, sfm));
            }
            if sru + sfm > thr {
                stack.push((m, u, srm, sru, sfm, sfu));
            }
        }
        false
    }

    /// The golden-section fallback of [`Sigmoid::pair_crosses`]: compares
    /// the searched extremum against the threshold on the original
    /// (unreflected) pair.
    fn decide_by_extremum(&self, other: &Sigmoid, threshold: f64) -> bool {
        let ext = self.pair_extremum(other);
        if ext.is_maximum {
            ext.sum > threshold
        } else {
            ext.sum < threshold
        }
    }
}

impl std::fmt::Display for Sigmoid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fs(a={:.4}, b={:.4})", self.a, self.b)
    }
}

/// The extremum of a two-sigmoid pulse sum, see [`Sigmoid::pair_extremum`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairExtremum {
    /// Location of the extremum, in scaled time units.
    pub scaled_time: f64,
    /// Value of `Fs₁ + Fs₂` at the extremum (in units of 1, not volts).
    pub sum: f64,
    /// `true` if this is a maximum (positive pulse), `false` for a minimum.
    pub is_maximum: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_closed_form() {
        let s = Sigmoid::new(7.3, 1.5);
        for &x in &[-3.0f64, 0.0, 1.5, 2.0, 9.0] {
            let expect = 1.0 / (1.0 + (-7.3 * (x - 1.5)).exp());
            assert!((s.eval_scaled(x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn saturates_without_nan() {
        let s = Sigmoid::new(50.0, 0.0);
        assert_eq!(s.eval_scaled(1e6), 1.0);
        assert_eq!(s.eval_scaled(-1e6), 0.0);
        assert!(s.derivative_scaled(1e6).abs() < 1e-12);
    }

    #[test]
    fn falling_polarity() {
        let s = Sigmoid::falling(5.0, 1.0);
        assert!(!s.is_rising());
        assert!(s.eval_scaled(-10.0) > 0.999);
        assert!(s.eval_scaled(10.0) < 0.001);
    }

    #[test]
    fn crossing_time_is_b() {
        let s = Sigmoid::new(-4.2, 3.3);
        assert!((s.eval_scaled(3.3) - 0.5).abs() < 1e-12);
        assert!((s.crossing_seconds() - 3.3e-10).abs() < 1e-22);
    }

    #[test]
    fn time_at_level_inverts_eval() {
        let s = Sigmoid::new(6.0, 2.0);
        for &lvl in &[0.1, 0.2, 0.5, 0.8, 0.99] {
            let x = s.time_at_level_scaled(lvl);
            assert!((s.eval_scaled(x) - lvl).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn time_at_level_rejects_bounds() {
        let _ = Sigmoid::new(1.0, 0.0).time_at_level_scaled(1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_slope_rejected() {
        let _ = Sigmoid::new(0.0, 1.0);
    }

    #[test]
    fn transition_time_formula() {
        let s = Sigmoid::new(8.0, 0.0);
        // 2 ln(4) / 8 scaled units = 2*1.386/8 * 100ps
        let expect = 2.0 * 4.0_f64.ln() / 8.0 * 1e-10;
        assert!((s.transition_time_20_80() - expect).abs() < 1e-15);
    }

    #[test]
    fn derivative_peak_at_inflection() {
        let s = Sigmoid::new(9.0, 1.0);
        let at_b = s.derivative_scaled(1.0);
        assert!((at_b - 9.0 / 4.0).abs() < 1e-12);
        assert!(s.derivative_scaled(0.5) < at_b);
        assert!(s.derivative_scaled(1.5) < at_b);
    }

    #[test]
    fn wide_pulse_peak_reaches_two() {
        // Far-apart rise/fall: the sum plateaus near 2.
        let r = Sigmoid::rising(20.0, 0.0);
        let f = Sigmoid::falling(20.0, 5.0);
        let ext = r.pair_extremum(&f);
        assert!(ext.is_maximum);
        assert!(ext.sum > 1.999, "sum {}", ext.sum);
        assert!(ext.scaled_time > 0.0 && ext.scaled_time < 5.0);
    }

    #[test]
    fn narrow_pulse_peak_degrades() {
        // Overlapping rise/fall: the pulse never develops fully.
        let r = Sigmoid::rising(5.0, 0.0);
        let f = Sigmoid::falling(5.0, 0.1);
        let ext = r.pair_extremum(&f);
        assert!(
            ext.sum < 1.5,
            "sub-threshold pulse expected, sum {}",
            ext.sum
        );
    }

    #[test]
    fn negative_pulse_minimum() {
        let f = Sigmoid::falling(20.0, 0.0);
        let r = Sigmoid::rising(20.0, 4.0);
        let ext = f.pair_extremum(&r);
        assert!(!ext.is_maximum);
        assert!(ext.sum < 0.001, "deep low pulse, sum {}", ext.sum);
    }

    #[test]
    #[should_panic(expected = "opposite polarities")]
    fn pair_extremum_rejects_same_polarity() {
        let a = Sigmoid::rising(1.0, 0.0);
        let b = Sigmoid::rising(1.0, 1.0);
        let _ = a.pair_extremum(&b);
    }

    #[test]
    fn display_formats() {
        let s = Sigmoid::new(1.0, 2.0);
        assert_eq!(format!("{s}"), "Fs(a=1.0000, b=2.0000)");
    }

    #[test]
    fn pair_crosses_wide_positive_pulse() {
        let r = Sigmoid::rising(20.0, 0.0);
        let f = Sigmoid::falling(20.0, 5.0);
        assert!(r.pair_crosses(&f, 1.5));
    }

    #[test]
    fn pair_crosses_narrow_positive_pulse_cancelled() {
        let r = Sigmoid::rising(5.0, 0.0);
        let f = Sigmoid::falling(5.0, 0.1);
        assert!(!r.pair_crosses(&f, 1.5));
    }

    #[test]
    fn pair_crosses_negative_pulse() {
        // Falling-then-rising pair: "crosses" means the sum dips below
        // the threshold. A deep low pulse does, a shallow one does not.
        let deep_f = Sigmoid::falling(20.0, 0.0);
        let deep_r = Sigmoid::rising(20.0, 4.0);
        assert!(deep_f.pair_crosses(&deep_r, 0.5));
        let shallow_f = Sigmoid::falling(5.0, 0.0);
        let shallow_r = Sigmoid::rising(5.0, 0.1);
        assert!(!shallow_f.pair_crosses(&shallow_r, 0.5));
    }

    #[test]
    fn pair_crosses_non_canonical_threshold_falls_back() {
        // Thresholds below 1.5 in max form bypass the tail argument and
        // defer to the extremum search; both must agree.
        let r = Sigmoid::rising(6.0, 0.0);
        let f = Sigmoid::falling(6.0, 0.4);
        let ext = r.pair_extremum(&f);
        assert_eq!(r.pair_crosses(&f, 1.2), ext.sum > 1.2);
    }

    #[test]
    #[should_panic(expected = "opposite polarities")]
    fn pair_crosses_rejects_same_polarity() {
        let a = Sigmoid::rising(1.0, 0.0);
        let b = Sigmoid::rising(1.0, 1.0);
        let _ = a.pair_crosses(&b, 1.5);
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pair_crosses_agrees_with_extremum_search(
            a1 in 2.0..50.0f64,
            a2 in 2.0..50.0f64,
            b1 in -5.0..5.0f64,
            gap in -1.0..8.0f64,
            falling_first in any::<bool>(),
        ) {
            // The branch-and-bound decision must match the golden-section
            // extremum search at the engine's canonical thresholds (1.5
            // for positive pulses, 0.5 for negative), for both pair
            // polarities. Skip the measure-zero band where the extremum
            // sits within the iterative search's own tolerance of the
            // threshold — there the two methods may legitimately differ.
            let (first, second, threshold) = if falling_first {
                (Sigmoid::falling(a1, b1), Sigmoid::rising(a2, b1 + gap), 0.5)
            } else {
                (Sigmoid::rising(a1, b1), Sigmoid::falling(a2, b1 + gap), 1.5)
            };
            let ext = first.pair_extremum(&second);
            if (ext.sum - threshold).abs() >= 1e-9 {
                let expect = if ext.is_maximum {
                    ext.sum > threshold
                } else {
                    ext.sum < threshold
                };
                prop_assert_eq!(first.pair_crosses(&second, threshold), expect,
                    "pair ({}, {}) threshold {}", first, second, threshold);
            }
        }
    }
}
