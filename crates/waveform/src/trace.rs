//! Sigmoidal traces: waveforms represented as sums of sigmoids (Eq. 2).

use serde::{Deserialize, Serialize};

use crate::{to_scaled_time, DigitalTrace, Level, Sigmoid, Waveform};

/// A waveform expressed as the joint model function of Eq. 2:
///
/// `F_T(t) = VDD · ( Σᵢ Fs(t, aᵢ, bᵢ) − k )`
///
/// where the offset `k` makes the trace start at the initial logic level
/// (the paper supplies `F_T − k · VDD` to the fitting algorithm because a
/// sum of `N` sigmoids settles between `k·VDD` and `(k+1)·VDD`).
///
/// Transitions must alternate in polarity, starting with the polarity that
/// leaves the initial level — this is the invariant every well-formed signal
/// trace in the paper satisfies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigmoidTrace {
    initial: Level,
    transitions: Vec<Sigmoid>,
    vdd: f64,
}

/// Error constructing a [`SigmoidTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildTraceError {
    /// Transition `index` has the same polarity as its predecessor (or, for
    /// index 0, does not leave the initial level).
    PolarityViolation {
        /// Index of the offending transition.
        index: usize,
    },
    /// Crossing times `b` are not non-decreasing.
    OutOfOrder {
        /// Index of the offending transition.
        index: usize,
    },
    /// `vdd` must be positive and finite.
    InvalidVdd(f64),
}

impl std::fmt::Display for BuildTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PolarityViolation { index } => write!(
                f,
                "transition {index} does not alternate polarity with its predecessor"
            ),
            Self::OutOfOrder { index } => {
                write!(f, "transition {index} is earlier than its predecessor")
            }
            Self::InvalidVdd(v) => write!(f, "vdd must be positive and finite, got {v}"),
        }
    }
}

impl std::error::Error for BuildTraceError {}

impl SigmoidTrace {
    /// Creates a trace from an initial level and alternating transitions.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTraceError`] if polarities do not alternate starting
    /// away from `initial`, if the crossing times are not sorted, or if
    /// `vdd` is invalid.
    pub fn from_transitions(
        initial: Level,
        transitions: Vec<Sigmoid>,
        vdd: f64,
    ) -> Result<Self, BuildTraceError> {
        if !vdd.is_finite() || vdd <= 0.0 {
            return Err(BuildTraceError::InvalidVdd(vdd));
        }
        let mut expect_rising = matches!(initial, Level::Low);
        for (i, s) in transitions.iter().enumerate() {
            if s.is_rising() != expect_rising {
                return Err(BuildTraceError::PolarityViolation { index: i });
            }
            expect_rising = !expect_rising;
            if i > 0 && transitions[i - 1].b > s.b {
                return Err(BuildTraceError::OutOfOrder { index: i });
            }
        }
        Ok(Self {
            initial,
            transitions,
            vdd,
        })
    }

    /// A constant trace at the given level with no transitions.
    #[must_use]
    pub fn constant(level: Level, vdd: f64) -> Self {
        Self {
            initial: level,
            transitions: Vec::new(),
            vdd,
        }
    }

    /// The initial logic level (value at `t = -∞`).
    #[must_use]
    pub fn initial(&self) -> Level {
        self.initial
    }

    /// The supply voltage scaling the trace.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The sigmoid transitions, ordered by crossing time.
    #[must_use]
    pub fn transitions(&self) -> &[Sigmoid] {
        &self.transitions
    }

    /// Number of transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` if the trace has no transitions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The offset `k` of Eq. 2: the number of falling sigmoids minus one if
    /// the trace starts high (each falling sigmoid contributes 1 at `-∞`).
    #[must_use]
    pub fn offset_k(&self) -> f64 {
        let falling = self.transitions.iter().filter(|s| !s.is_rising()).count() as f64;
        match self.initial {
            Level::Low => falling,
            Level::High => falling - 1.0,
        }
    }

    /// Evaluates the trace voltage at scaled time `x = t · 10^10`.
    #[must_use]
    pub fn value_at_scaled(&self, x: f64) -> f64 {
        let sum: f64 = self.transitions.iter().map(|s| s.eval_scaled(x)).sum();
        self.vdd * (sum - self.offset_k())
    }

    /// Evaluates the trace voltage at a time in seconds.
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        self.value_at_scaled(to_scaled_time(t))
    }

    /// The final logic level after all transitions.
    #[must_use]
    pub fn final_level(&self) -> Level {
        if self.transitions.len().is_multiple_of(2) {
            self.initial
        } else {
            self.initial.inverted()
        }
    }

    /// Appends a transition.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTraceError`] if the polarity does not alternate or the
    /// crossing time precedes the last transition.
    pub fn push(&mut self, s: Sigmoid) -> Result<(), BuildTraceError> {
        let expect_rising = !self.final_level().is_high();
        let index = self.transitions.len();
        if s.is_rising() != expect_rising {
            return Err(BuildTraceError::PolarityViolation { index });
        }
        if let Some(last) = self.transitions.last() {
            if last.b > s.b {
                return Err(BuildTraceError::OutOfOrder { index });
            }
        }
        self.transitions.push(s);
        Ok(())
    }

    /// Digitizes the trace at `threshold` volts into Heaviside transitions.
    ///
    /// For well-separated transitions each sigmoid crossing is at
    /// `time_at_level(threshold/vdd)`; overlapping transitions (degraded
    /// pulses) are resolved by sampling the exact trace and refining each
    /// crossing by bisection, so sub-threshold pulses correctly produce *no*
    /// digital transitions.
    #[must_use]
    pub fn digitize(&self, threshold: f64) -> DigitalTrace {
        if self.transitions.is_empty() {
            return DigitalTrace::constant(self.initial);
        }
        // Sampling window: pad by the widest transition.
        let first = self.transitions.first().expect("non-empty");
        let last = self.transitions.last().expect("non-empty");
        let max_width = self
            .transitions
            .iter()
            .map(|s| 20.0 / s.a.abs())
            .fold(0.0f64, f64::max);
        let x0 = first.b - max_width;
        let x1 = last.b + max_width;
        // Dense enough to catch the narrowest pulse: resolve each sigmoid's
        // width with several samples.
        let min_width = self
            .transitions
            .iter()
            .map(|s| 1.0 / s.a.abs())
            .fold(f64::INFINITY, f64::min);
        let step = (min_width / 4.0).min((x1 - x0) / 256.0);
        let n = (((x1 - x0) / step).ceil() as usize).clamp(257, 2_000_000) + 1;
        let dt = (x1 - x0) / (n - 1) as f64;

        let mut toggles = Vec::new();
        let mut prev_x = x0;
        let mut prev_v = self.value_at_scaled(x0);
        for i in 1..n {
            let x = x0 + i as f64 * dt;
            let v = self.value_at_scaled(x);
            if (prev_v > threshold) != (v > threshold) {
                // Bisect for the crossing.
                let (mut lo, mut hi) = (prev_x, x);
                let lo_above = prev_v > threshold;
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if (self.value_at_scaled(mid) > threshold) == lo_above {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                toggles.push(crate::to_seconds(0.5 * (lo + hi)));
            }
            prev_x = x;
            prev_v = v;
        }
        let initial = Level::from_bool(self.value_at_scaled(x0) > threshold);
        DigitalTrace::new(initial, toggles).expect("bisection times increase")
    }

    /// Renders the trace into a sampled [`Waveform`] on `[t0, t1]` seconds
    /// with `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t0 >= t1`.
    #[must_use]
    pub fn to_waveform(&self, t0: f64, t1: f64, n: usize) -> Waveform {
        Waveform::from_fn(t0, t1, n, |t| self.value_at(t))
    }

    /// Consumes the trace and returns its transitions.
    #[must_use]
    pub fn into_transitions(self) -> Vec<Sigmoid> {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VDD_DEFAULT;
    use proptest::prelude::*;

    fn pulse(a: f64, b1: f64, b2: f64) -> SigmoidTrace {
        SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(a, b1), Sigmoid::falling(a, b2)],
            VDD_DEFAULT,
        )
        .unwrap()
    }

    #[test]
    fn constant_trace() {
        let t = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        assert!((t.value_at(0.0) - VDD_DEFAULT).abs() < 1e-12);
        assert!(t.digitize(0.4).is_empty());
        assert_eq!(t.digitize(0.4).initial(), Level::High);
    }

    #[test]
    fn polarity_validation() {
        let err = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::falling(5.0, 1.0)],
            VDD_DEFAULT,
        )
        .unwrap_err();
        assert_eq!(err, BuildTraceError::PolarityViolation { index: 0 });

        let err = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(5.0, 1.0), Sigmoid::rising(5.0, 2.0)],
            VDD_DEFAULT,
        )
        .unwrap_err();
        assert_eq!(err, BuildTraceError::PolarityViolation { index: 1 });
    }

    #[test]
    fn ordering_validation() {
        let err = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(5.0, 2.0), Sigmoid::falling(5.0, 1.0)],
            VDD_DEFAULT,
        )
        .unwrap_err();
        assert_eq!(err, BuildTraceError::OutOfOrder { index: 1 });
    }

    #[test]
    fn invalid_vdd() {
        assert!(matches!(
            SigmoidTrace::from_transitions(Level::Low, vec![], 0.0),
            Err(BuildTraceError::InvalidVdd(_))
        ));
    }

    #[test]
    fn wide_pulse_values() {
        let t = pulse(20.0, 1.0, 4.0);
        assert!(t.value_at_scaled(-5.0).abs() < 1e-3);
        assert!((t.value_at_scaled(2.5) - VDD_DEFAULT).abs() < 1e-3);
        assert!(t.value_at_scaled(10.0).abs() < 1e-3);
        assert_eq!(t.final_level(), Level::Low);
    }

    #[test]
    fn starts_high_offset() {
        let t = SigmoidTrace::from_transitions(
            Level::High,
            vec![Sigmoid::falling(20.0, 1.0), Sigmoid::rising(20.0, 4.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        assert!((t.value_at_scaled(-5.0) - VDD_DEFAULT).abs() < 1e-3);
        assert!(t.value_at_scaled(2.5).abs() < 1e-3);
        assert!((t.value_at_scaled(10.0) - VDD_DEFAULT).abs() < 1e-3);
    }

    #[test]
    fn digitize_wide_pulse() {
        let t = pulse(20.0, 1.0, 4.0);
        let d = t.digitize(VDD_DEFAULT / 2.0);
        assert_eq!(d.len(), 2);
        assert!((d.toggles()[0] - 1.0e-10).abs() < 1e-13);
        assert!((d.toggles()[1] - 4.0e-10).abs() < 1e-13);
    }

    #[test]
    fn digitize_subthreshold_pulse_vanishes() {
        // Overlapping rise/fall that never reaches VDD/2.
        let t = pulse(4.0, 1.0, 1.1);
        let peak = t.transitions()[0].pair_extremum(&t.transitions()[1]);
        assert!(peak.sum < 1.5);
        let d = t.digitize(VDD_DEFAULT / 2.0);
        assert!(d.is_empty(), "sub-threshold pulse must not digitize");
    }

    #[test]
    fn push_maintains_invariants() {
        let mut t = SigmoidTrace::constant(Level::Low, VDD_DEFAULT);
        t.push(Sigmoid::rising(5.0, 1.0)).unwrap();
        assert!(t.push(Sigmoid::rising(5.0, 2.0)).is_err());
        t.push(Sigmoid::falling(5.0, 2.0)).unwrap();
        assert!(t.push(Sigmoid::rising(5.0, 1.5)).is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn to_waveform_round_trip() {
        let t = pulse(20.0, 1.0, 4.0);
        let w = t.to_waveform(0.0, 6e-10, 600);
        let d_trace = t.digitize(0.4);
        let d_wave = w.digitize(0.4);
        assert_eq!(d_trace.len(), d_wave.len());
        for (a, b) in d_trace.toggles().iter().zip(d_wave.toggles()) {
            assert!((a - b).abs() < 2e-12);
        }
    }

    proptest! {
        #[test]
        fn digitize_matches_transition_count_when_separated(
            n in 1usize..6,
            gap in 1.0..3.0f64,
            a in 4.0..40.0f64,
        ) {
            // Well-separated transitions: digitization recovers exactly n toggles
            // at the sigmoid crossing times.
            let mut trs = Vec::new();
            for i in 0..n {
                let b = i as f64 * gap * (40.0 / a).max(1.0);
                let s = if i % 2 == 0 { Sigmoid::rising(a, b) } else { Sigmoid::falling(a, b) };
                trs.push(s);
            }
            let t = SigmoidTrace::from_transitions(Level::Low, trs.clone(), VDD_DEFAULT).unwrap();
            let d = t.digitize(VDD_DEFAULT / 2.0);
            prop_assert_eq!(d.len(), n);
            for (tog, s) in d.toggles().iter().zip(&trs) {
                prop_assert!((tog - s.crossing_seconds()).abs() < 1e-12,
                    "toggle {} vs crossing {}", tog, s.crossing_seconds());
            }
        }

        #[test]
        fn value_bounded_for_alternating_traces(
            n in 0usize..8,
            a in 2.0..50.0f64,
            x in -10.0..50.0f64,
        ) {
            let mut trs = Vec::new();
            for i in 0..n {
                let b = i as f64 * 3.0;
                trs.push(if i % 2 == 0 { Sigmoid::rising(a, b) } else { Sigmoid::falling(a, b) });
            }
            let t = SigmoidTrace::from_transitions(Level::Low, trs, VDD_DEFAULT).unwrap();
            let v = t.value_at_scaled(x);
            prop_assert!(v > -0.2 * VDD_DEFAULT && v < 1.2 * VDD_DEFAULT,
                "trace value {} out of physical range", v);
        }
    }
}
