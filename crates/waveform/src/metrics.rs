//! The paper's accuracy metric: `t_err`, the total time two traces disagree
//! about being above/below the `VDD/2` threshold (Sec. V-B).
//!
//! Predictions (digital or sigmoidal) are digitized at the threshold and
//! compared against the reference (analog) trace over an observation window;
//! per-output errors are summed over all outputs of a circuit.

use crate::{DigitalTrace, SigmoidTrace, Waveform};

/// An observation window `[t0, t1]` in seconds over which `t_err` is
/// accumulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start (seconds).
    pub t0: f64,
    /// Window end (seconds).
    pub t1: f64,
}

impl Window {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `t0 > t1` or either bound is not finite.
    #[must_use]
    pub fn new(t0: f64, t1: f64) -> Self {
        assert!(t0.is_finite() && t1.is_finite(), "window must be finite");
        assert!(t0 <= t1, "window start must not exceed end");
        Self { t0, t1 }
    }

    /// Window length in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// `t_err` between two digital traces over `window` (seconds).
#[must_use]
pub fn t_err_digital(reference: &DigitalTrace, prediction: &DigitalTrace, window: Window) -> f64 {
    reference.mismatch_time(prediction, window.t0, window.t1)
}

/// `t_err` of a digital prediction against an analog reference waveform:
/// the reference is digitized at `threshold` first.
#[must_use]
pub fn t_err_vs_analog(
    reference: &Waveform,
    prediction: &DigitalTrace,
    threshold: f64,
    window: Window,
) -> f64 {
    t_err_digital(&reference.digitize(threshold), prediction, window)
}

/// `t_err` of a sigmoidal prediction against an analog reference waveform;
/// both are digitized at `threshold` (the paper compares all predictions in
/// the digital domain at `VDD/2`).
#[must_use]
pub fn t_err_sigmoid_vs_analog(
    reference: &Waveform,
    prediction: &SigmoidTrace,
    threshold: f64,
    window: Window,
) -> f64 {
    t_err_digital(
        &reference.digitize(threshold),
        &prediction.digitize(threshold),
        window,
    )
}

/// Aggregates per-output `t_err` values over all outputs of a circuit, as in
/// Table I ("summed among all outputs of a circuit").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorAccumulator {
    total: f64,
    count: usize,
    max: f64,
}

impl ErrorAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one output's `t_err` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `t_err` is negative or not finite.
    pub fn add(&mut self, t_err: f64) {
        assert!(t_err.is_finite() && t_err >= 0.0, "t_err must be >= 0");
        self.total += t_err;
        self.count += 1;
        self.max = self.max.max(t_err);
    }

    /// Total `t_err` over all added outputs (seconds).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of outputs added.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean per-output `t_err`; 0 if nothing was added.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Largest single-output `t_err`.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for ErrorAccumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Sigmoid, VDD_DEFAULT};

    #[test]
    fn window_duration() {
        let w = Window::new(1.0, 3.5);
        assert!((w.duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn window_rejects_inverted() {
        let _ = Window::new(2.0, 1.0);
    }

    #[test]
    fn digital_vs_digital() {
        let a = DigitalTrace::new(Level::Low, vec![1.0, 5.0]).unwrap();
        let b = DigitalTrace::new(Level::Low, vec![2.0, 5.0]).unwrap();
        assert!((t_err_digital(&a, &b, Window::new(0.0, 10.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_prediction_against_analog() {
        // Analog reference: clean pulse 100..300 ps; sigmoid prediction
        // shifted by 10 ps -> t_err = 20 ps.
        let reference = Waveform::from_fn(0.0, 5e-10, 2000, |t| {
            if t > 1e-10 && t < 3e-10 {
                VDD_DEFAULT
            } else {
                0.0
            }
        });
        let pred = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(50.0, 1.1), Sigmoid::falling(50.0, 3.1)],
            VDD_DEFAULT,
        )
        .unwrap();
        let e = t_err_sigmoid_vs_analog(
            &reference,
            &pred,
            VDD_DEFAULT / 2.0,
            Window::new(0.0, 5e-10),
        );
        assert!((e - 2e-11).abs() < 1e-12, "t_err {e}");
    }

    #[test]
    fn accumulator_statistics() {
        let mut acc = ErrorAccumulator::new();
        acc.extend([1.0, 2.0, 3.0]);
        assert_eq!(acc.count(), 3);
        assert!((acc.total() - 6.0).abs() < 1e-12);
        assert!((acc.mean() - 2.0).abs() < 1e-12);
        assert!((acc.max() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_mean() {
        assert_eq!(ErrorAccumulator::new().mean(), 0.0);
    }
}
