//! Signal representations for dynamic timing analysis with sigmoidal
//! approximations.
//!
//! This crate provides the three signal representations used throughout the
//! reproduction of *Signal Prediction for Digital Circuits by Sigmoidal
//! Approximations using Neural Networks* (DATE 2025):
//!
//! * [`Sigmoid`] — a single logistic transition `Fs(t, a, b) = 1 / (1 +
//!   exp(-a (t·10^10 - b)))` (Eq. 1 of the paper), parameterized by a slope
//!   `a` (sign gives polarity) and a threshold-crossing time `b`.
//! * [`SigmoidTrace`] — a waveform as a sum of sigmoids scaled by `VDD`
//!   (Eq. 2), i.e. the "sigmoidal approximation" of an analog waveform.
//! * [`Waveform`] — a sampled analog waveform as produced by an analog
//!   simulator.
//! * [`DigitalTrace`] — a classic digital trace of Heaviside transitions, as
//!   produced by a digital timing simulator.
//!
//! The [`metrics`] module implements the paper's error measure `t_err`: the
//! total amount of time during which two traces disagree about being
//! above/below the `VDD/2` threshold.
//!
//! # Example
//!
//! ```
//! use sigwave::{Sigmoid, SigmoidTrace, Level, VDD_DEFAULT};
//!
//! // A rising transition crossing VDD/2 at 100 ps with a moderate slope,
//! // followed by a falling transition at 200 ps.
//! let trace = SigmoidTrace::from_transitions(
//!     Level::Low,
//!     vec![Sigmoid::new(30.0, 1.0), Sigmoid::new(-30.0, 2.0)],
//!     VDD_DEFAULT,
//! )
//! .expect("alternating polarities");
//! let mid = trace.value_at(1.5e-10);
//! assert!((mid - VDD_DEFAULT).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analog;
mod digital;
pub mod metrics;
pub mod parallel;
mod sigmoid;
mod trace;
pub mod vcd;

pub use analog::{BuildWaveformError, CrossingDirection, Waveform};
pub use digital::{DigitalTrace, Level, MonotonicityError};
pub use sigmoid::{PairExtremum, Sigmoid};
pub use trace::{BuildTraceError, SigmoidTrace};
pub use vcd::{write_vcd, VcdSignal};

/// Supply voltage used throughout the reproduction, matching the paper's
/// Nangate 15 nm FinFET characterization point (`VDD = 0.8 V`).
pub const VDD_DEFAULT: f64 = 0.8;

/// The time scale factor of Eq. 1: parameters `b` are expressed in units of
/// `1 / TIME_SCALE` seconds (100 ps), so that `a` and `b` live in comparable
/// numeric ranges (see Sec. II of the paper).
pub const TIME_SCALE: f64 = 1e10;

/// Converts a time in seconds to the scaled time unit used by sigmoid
/// parameters (`x = t · 10^10`).
#[inline]
pub fn to_scaled_time(t_seconds: f64) -> f64 {
    t_seconds * TIME_SCALE
}

/// Converts a scaled time (units of 100 ps) back to seconds.
#[inline]
pub fn to_seconds(scaled: f64) -> f64 {
    scaled / TIME_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_time_round_trip() {
        let t = 3.37e-10;
        assert!((to_seconds(to_scaled_time(t)) - t).abs() < 1e-24);
    }

    #[test]
    fn scale_constants_consistent() {
        // 100 ps maps to 1.0 scaled units.
        assert_eq!(to_scaled_time(100e-12), 1.0);
        assert_eq!(VDD_DEFAULT, 0.8);
    }
}
