//! Sampled analog waveforms, as produced by an analog (SPICE-like) simulator.

use serde::{Deserialize, Serialize};

use crate::{DigitalTrace, Level};

/// A sampled analog waveform: strictly increasing sample times (seconds) and
/// node voltages (volts). Values between samples are linearly interpolated.
///
/// # Example
///
/// ```
/// use sigwave::Waveform;
/// let w = Waveform::new(vec![0.0, 1e-12, 2e-12], vec![0.0, 0.4, 0.8]).unwrap();
/// assert!((w.value_at(0.5e-12) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    ts: Vec<f64>,
    vs: Vec<f64>,
}

/// Error constructing a [`Waveform`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildWaveformError {
    /// Time and value vectors have different lengths.
    LengthMismatch,
    /// Fewer than two samples.
    TooFewSamples,
    /// Sample times are not strictly increasing or contain non-finite values.
    NonMonotonicTimes {
        /// Index of the offending sample.
        index: usize,
    },
    /// A voltage sample is not finite.
    NonFiniteValue {
        /// Index of the offending sample.
        index: usize,
    },
}

impl std::fmt::Display for BuildWaveformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch => write!(f, "time and value vectors differ in length"),
            Self::TooFewSamples => write!(f, "a waveform needs at least two samples"),
            Self::NonMonotonicTimes { index } => {
                write!(
                    f,
                    "sample times must be strictly increasing (index {index})"
                )
            }
            Self::NonFiniteValue { index } => {
                write!(f, "voltage sample is not finite (index {index})")
            }
        }
    }
}

impl std::error::Error for BuildWaveformError {}

impl Waveform {
    /// Creates a waveform from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// See [`BuildWaveformError`].
    pub fn new(ts: Vec<f64>, vs: Vec<f64>) -> Result<Self, BuildWaveformError> {
        if ts.len() != vs.len() {
            return Err(BuildWaveformError::LengthMismatch);
        }
        if ts.len() < 2 {
            return Err(BuildWaveformError::TooFewSamples);
        }
        for (i, w) in ts.windows(2).enumerate() {
            if !w[0].is_finite() || !w[1].is_finite() || w[0] >= w[1] {
                return Err(BuildWaveformError::NonMonotonicTimes { index: i + 1 });
            }
        }
        if let Some((i, _)) = vs.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(BuildWaveformError::NonFiniteValue { index: i });
        }
        Ok(Self { ts, vs })
    }

    /// Samples a closure uniformly on `[t0, t1]` with `n` points (n ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t0 >= t1`.
    #[must_use]
    pub fn from_fn(t0: f64, t1: f64, n: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(t0 < t1, "t0 must precede t1");
        let dt = (t1 - t0) / (n - 1) as f64;
        let ts: Vec<f64> = (0..n).map(|i| t0 + i as f64 * dt).collect();
        let vs = ts.iter().map(|&t| f(t)).collect();
        Self { ts, vs }
    }

    /// Sample times in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.ts
    }

    /// Sampled voltages in volts.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.vs
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Always `false`: construction requires at least two samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First sample time.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.ts[0]
    }

    /// Last sample time.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        *self.ts.last().expect("non-empty")
    }

    /// Linear interpolation at `t`; clamps to the end values outside the
    /// sampled range.
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.ts[0] {
            return self.vs[0];
        }
        if t >= *self.ts.last().expect("non-empty") {
            return *self.vs.last().expect("non-empty");
        }
        let i = self.ts.partition_point(|&x| x <= t);
        let (t0, t1) = (self.ts[i - 1], self.ts[i]);
        let (v0, v1) = (self.vs[i - 1], self.vs[i]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Clips all samples into `[lo, hi]` — the paper clips SPICE waveforms
    /// to `[0, VDD]` before fitting because sigmoids cannot model
    /// over/undershoots (Sec. II-B).
    #[must_use]
    pub fn clipped(&self, lo: f64, hi: f64) -> Waveform {
        Waveform {
            ts: self.ts.clone(),
            vs: self.vs.iter().map(|v| v.clamp(lo, hi)).collect(),
        }
    }

    /// All times where the linearly-interpolated waveform crosses `threshold`,
    /// each tagged with the direction of the crossing.
    ///
    /// Exact-threshold plateaus are attributed to the first sample leaving
    /// the plateau.
    #[must_use]
    pub fn crossings(&self, threshold: f64) -> Vec<(f64, CrossingDirection)> {
        let mut out = Vec::new();
        let mut prev_side: Option<bool> = side(self.vs[0], threshold);
        let mut prev_t = self.ts[0];
        for i in 1..self.ts.len() {
            let s = side(self.vs[i], threshold);
            match (prev_side, s) {
                (Some(a), Some(b)) if a != b => {
                    // Interpolate crossing inside [ts[i-1], ts[i]].
                    let (t0, t1) = (self.ts[i - 1], self.ts[i]);
                    let (v0, v1) = (self.vs[i - 1], self.vs[i]);
                    let tc = t0 + (threshold - v0) * (t1 - t0) / (v1 - v0);
                    out.push((
                        tc,
                        if b {
                            CrossingDirection::Rising
                        } else {
                            CrossingDirection::Falling
                        },
                    ));
                    prev_side = s;
                }
                (None, Some(b)) => {
                    // Leaving an exact-threshold plateau: count as a crossing
                    // if the level before the plateau differed.
                    out.push((
                        prev_t,
                        if b {
                            CrossingDirection::Rising
                        } else {
                            CrossingDirection::Falling
                        },
                    ));
                    prev_side = s;
                }
                (Some(_), None) => { /* entering plateau: wait */ }
                _ => {
                    if s.is_some() {
                        prev_side = s;
                    }
                }
            }
            prev_t = self.ts[i];
        }
        // Deduplicate: a plateau entered and left on the same side yields
        // spurious same-direction repeats; keep alternating directions only.
        dedup_alternating(out)
    }

    /// Numerical derivative (central differences) at `t`, volts/second.
    #[must_use]
    pub fn derivative_at(&self, t: f64) -> f64 {
        let span = self.t_end() - self.t_start();
        let h = (span / (self.len() as f64)).max(1e-18);
        (self.value_at(t + h) - self.value_at(t - h)) / (2.0 * h)
    }

    /// Digitizes at `threshold` into a [`DigitalTrace`], exactly like the
    /// comparator of a digital simulator front-end.
    #[must_use]
    pub fn digitize(&self, threshold: f64) -> DigitalTrace {
        let initial = Level::from_bool(self.vs[0] > threshold);
        let toggles: Vec<f64> = self
            .crossings(threshold)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        DigitalTrace::new(initial, toggles).expect("crossings are strictly increasing")
    }

    /// Resamples uniformly with `n` points over the full span.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn resampled(&self, n: usize) -> Waveform {
        Waveform::from_fn(self.t_start(), self.t_end(), n, |t| self.value_at(t))
    }

    /// Root-mean-square difference against another waveform, evaluated on
    /// `n` uniform points of the overlap of both spans.
    ///
    /// # Panics
    ///
    /// Panics if the spans do not overlap or `n < 2`.
    #[must_use]
    pub fn rms_difference(&self, other: &Waveform, n: usize) -> f64 {
        let t0 = self.t_start().max(other.t_start());
        let t1 = self.t_end().min(other.t_end());
        assert!(t0 < t1, "waveform spans do not overlap");
        assert!(n >= 2);
        let dt = (t1 - t0) / (n - 1) as f64;
        let sum: f64 = (0..n)
            .map(|i| {
                let t = t0 + i as f64 * dt;
                let d = self.value_at(t) - other.value_at(t);
                d * d
            })
            .sum();
        (sum / n as f64).sqrt()
    }
}

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossingDirection {
    /// The waveform goes from below to above the threshold.
    Rising,
    /// The waveform goes from above to below the threshold.
    Falling,
}

fn side(v: f64, threshold: f64) -> Option<bool> {
    if v > threshold {
        Some(true)
    } else if v < threshold {
        Some(false)
    } else {
        None
    }
}

fn dedup_alternating(xs: Vec<(f64, CrossingDirection)>) -> Vec<(f64, CrossingDirection)> {
    let mut out: Vec<(f64, CrossingDirection)> = Vec::with_capacity(xs.len());
    for x in xs {
        if let Some(last) = out.last() {
            if last.1 == x.1 {
                continue;
            }
        }
        out.push(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Waveform::new(vec![0.0], vec![0.0]),
            Err(BuildWaveformError::TooFewSamples)
        ));
        assert!(matches!(
            Waveform::new(vec![0.0, 1.0], vec![0.0]),
            Err(BuildWaveformError::LengthMismatch)
        ));
        assert!(matches!(
            Waveform::new(vec![1.0, 0.0], vec![0.0, 0.0]),
            Err(BuildWaveformError::NonMonotonicTimes { index: 1 })
        ));
        assert!(matches!(
            Waveform::new(vec![0.0, 1.0], vec![0.0, f64::NAN]),
            Err(BuildWaveformError::NonFiniteValue { index: 1 })
        ));
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp();
        assert!((w.value_at(0.5) - 0.5).abs() < 1e-12);
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(-5.0), 0.0);
        assert_eq!(w.value_at(5.0), 0.0);
    }

    #[test]
    fn crossings_of_triangle() {
        let w = ramp();
        let c = w.crossings(0.5);
        assert_eq!(c.len(), 2);
        assert!((c[0].0 - 0.5).abs() < 1e-12);
        assert_eq!(c[0].1, CrossingDirection::Rising);
        assert!((c[1].0 - 1.5).abs() < 1e-12);
        assert_eq!(c[1].1, CrossingDirection::Falling);
    }

    #[test]
    fn digitize_triangle() {
        let d = ramp().digitize(0.5);
        assert_eq!(d.initial(), Level::Low);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn clip_removes_overshoot() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![-0.1, 0.9, 0.3]).unwrap();
        let c = w.clipped(0.0, 0.8);
        assert_eq!(c.values(), &[0.0, 0.8, 0.3]);
    }

    #[test]
    fn from_fn_samples_uniformly() {
        let w = Waveform::from_fn(0.0, 1.0, 11, |t| 2.0 * t);
        assert_eq!(w.len(), 11);
        assert!((w.value_at(0.25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derivative_of_line() {
        let w = Waveform::from_fn(0.0, 1.0, 101, |t| 3.0 * t);
        assert!((w.derivative_at(0.5) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn rms_of_identical_is_zero() {
        let w = ramp();
        assert!(w.rms_difference(&w, 64) < 1e-12);
    }

    #[test]
    fn plateau_does_not_double_count() {
        // Waveform rises, sits exactly at threshold, then continues up:
        // exactly one rising crossing.
        let w = Waveform::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.5, 0.5, 1.0]).unwrap();
        let c = w.crossings(0.5);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].1, CrossingDirection::Rising);
    }

    #[test]
    fn resample_preserves_shape() {
        let w = ramp();
        let r = w.resampled(201);
        assert!(w.rms_difference(&r, 101) < 1e-9);
    }
}
