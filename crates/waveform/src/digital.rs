//! Classic digital traces: Heaviside transitions at threshold crossings.

use serde::{Deserialize, Serialize};

/// A binary signal level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Logic low (GND).
    Low,
    /// Logic high (VDD).
    High,
}

impl Level {
    /// The opposite level.
    #[must_use]
    pub fn inverted(self) -> Level {
        match self {
            Level::Low => Level::High,
            Level::High => Level::Low,
        }
    }

    /// `true` for [`Level::High`].
    #[must_use]
    pub fn is_high(self) -> bool {
        matches!(self, Level::High)
    }

    /// Converts a boolean (`true` = high).
    #[must_use]
    pub fn from_bool(high: bool) -> Level {
        if high {
            Level::High
        } else {
            Level::Low
        }
    }
}

impl std::ops::Not for Level {
    type Output = Level;
    fn not(self) -> Level {
        self.inverted()
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Low => write!(f, "0"),
            Level::High => write!(f, "1"),
        }
    }
}

/// A digital signal trace: an initial level and a strictly increasing list of
/// toggle times (seconds). Each time flips the level; this encodes the
/// sequence of Heaviside transitions produced by a digital simulator or by
/// digitizing an analog waveform at the `VDD/2` threshold.
///
/// # Example
///
/// ```
/// use sigwave::{DigitalTrace, Level};
/// let t = DigitalTrace::new(Level::Low, vec![1e-10, 3e-10]).unwrap();
/// assert_eq!(t.level_at(0.0), Level::Low);
/// assert_eq!(t.level_at(2e-10), Level::High);
/// assert_eq!(t.level_at(4e-10), Level::Low);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigitalTrace {
    initial: Level,
    toggles: Vec<f64>,
}

/// Error constructing a [`DigitalTrace`] from toggle times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonotonicityError {
    /// Index of the first out-of-order toggle time.
    pub index: usize,
}

impl std::fmt::Display for MonotonicityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "toggle times must be strictly increasing and finite (violation at index {})",
            self.index
        )
    }
}

impl std::error::Error for MonotonicityError {}

impl DigitalTrace {
    /// Creates a trace from an initial level and strictly increasing toggle
    /// times in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`MonotonicityError`] if the times are not strictly
    /// increasing or not finite.
    pub fn new(initial: Level, toggles: Vec<f64>) -> Result<Self, MonotonicityError> {
        for (i, w) in toggles.windows(2).enumerate() {
            if w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less) {
                return Err(MonotonicityError { index: i + 1 });
            }
        }
        if let Some((i, _)) = toggles.iter().enumerate().find(|(_, t)| !t.is_finite()) {
            return Err(MonotonicityError { index: i });
        }
        Ok(Self { initial, toggles })
    }

    /// A constant trace with no transitions.
    #[must_use]
    pub fn constant(level: Level) -> Self {
        Self {
            initial: level,
            toggles: Vec::new(),
        }
    }

    /// The level before the first toggle.
    #[must_use]
    pub fn initial(&self) -> Level {
        self.initial
    }

    /// The toggle times in seconds, strictly increasing.
    #[must_use]
    pub fn toggles(&self) -> &[f64] {
        &self.toggles
    }

    /// Number of transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.toggles.len()
    }

    /// `true` if the trace never switches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.toggles.is_empty()
    }

    /// The level at time `t` (toggle instants belong to the *new* level).
    #[must_use]
    pub fn level_at(&self, t: f64) -> Level {
        let n = self.toggles.partition_point(|&x| x <= t);
        if n % 2 == 0 {
            self.initial
        } else {
            self.initial.inverted()
        }
    }

    /// The final level after all transitions.
    #[must_use]
    pub fn final_level(&self) -> Level {
        if self.toggles.len().is_multiple_of(2) {
            self.initial
        } else {
            self.initial.inverted()
        }
    }

    /// Appends a toggle at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not strictly after the last toggle, or not finite.
    pub fn push_toggle(&mut self, t: f64) {
        assert!(t.is_finite(), "toggle time must be finite");
        if let Some(&last) = self.toggles.last() {
            assert!(t > last, "toggle times must be strictly increasing");
        }
        self.toggles.push(t);
    }

    /// The total time within `[t0, t1]` during which this trace and `other`
    /// disagree — the paper's `t_err` contribution of one signal pair
    /// (Sec. V-B: traces "match at time t if both are above (below) the
    /// threshold").
    ///
    /// # Panics
    ///
    /// Panics if `t0 > t1`.
    #[must_use]
    pub fn mismatch_time(&self, other: &DigitalTrace, t0: f64, t1: f64) -> f64 {
        assert!(t0 <= t1, "empty or inverted interval");
        // Sweep the merged toggle sequence, accumulating the measure of the
        // sub-intervals on which the levels differ.
        let mut err = 0.0;
        let mut t = t0;
        let mut ia = self.toggles.partition_point(|&x| x <= t0);
        let mut ib = other.toggles.partition_point(|&x| x <= t0);
        let mut la = self.level_at(t0);
        let mut lb = other.level_at(t0);
        loop {
            let next_a = self.toggles.get(ia).copied().unwrap_or(f64::INFINITY);
            let next_b = other.toggles.get(ib).copied().unwrap_or(f64::INFINITY);
            let next = next_a.min(next_b).min(t1);
            if la != lb {
                err += next - t;
            }
            if next >= t1 {
                break;
            }
            t = next;
            if next_a <= next {
                la = la.inverted();
                ia += 1;
            }
            if next_b <= next {
                lb = lb.inverted();
                ib += 1;
            }
        }
        err
    }

    /// Inverts the trace (as an ideal zero-delay inverter would).
    #[must_use]
    pub fn inverted(&self) -> DigitalTrace {
        DigitalTrace {
            initial: self.initial.inverted(),
            toggles: self.toggles.clone(),
        }
    }

    /// Shifts every toggle by `dt` seconds (a pure delay channel).
    #[must_use]
    pub fn delayed(&self, dt: f64) -> DigitalTrace {
        DigitalTrace {
            initial: self.initial,
            toggles: self.toggles.iter().map(|t| t + dt).collect(),
        }
    }
}

impl Default for DigitalTrace {
    fn default() -> Self {
        Self::constant(Level::Low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn level_sampling() {
        let t = DigitalTrace::new(Level::High, vec![1.0, 2.0, 5.0]).unwrap();
        assert_eq!(t.level_at(0.5), Level::High);
        assert_eq!(t.level_at(1.0), Level::Low); // toggle instant -> new level
        assert_eq!(t.level_at(1.5), Level::Low);
        assert_eq!(t.level_at(3.0), Level::High);
        assert_eq!(t.level_at(6.0), Level::Low);
        assert_eq!(t.final_level(), Level::Low);
    }

    #[test]
    fn rejects_non_monotonic() {
        let err = DigitalTrace::new(Level::Low, vec![2.0, 1.0]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("strictly increasing"));
    }

    #[test]
    fn rejects_nan() {
        assert!(DigitalTrace::new(Level::Low, vec![f64::NAN]).is_err());
    }

    #[test]
    fn mismatch_simple() {
        // A toggles at 1, B at 2: they disagree on [1,2).
        let a = DigitalTrace::new(Level::Low, vec![1.0]).unwrap();
        let b = DigitalTrace::new(Level::Low, vec![2.0]).unwrap();
        assert!((a.mismatch_time(&b, 0.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_missed_pulse() {
        // Reference has a pulse [1,2]; prediction is constant low.
        let r = DigitalTrace::new(Level::Low, vec![1.0, 2.0]).unwrap();
        let p = DigitalTrace::constant(Level::Low);
        assert!((r.mismatch_time(&p, 0.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_opposite_constants() {
        let a = DigitalTrace::constant(Level::Low);
        let b = DigitalTrace::constant(Level::High);
        assert!((a.mismatch_time(&b, 2.0, 7.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_clipped_to_window() {
        let a = DigitalTrace::new(Level::Low, vec![1.0]).unwrap();
        let b = DigitalTrace::constant(Level::Low);
        // Disagreement is [1, inf) but window is [0, 3].
        assert!((a.mismatch_time(&b, 0.0, 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_and_delayed() {
        let a = DigitalTrace::new(Level::Low, vec![1.0, 2.0]).unwrap();
        let inv = a.inverted();
        assert_eq!(inv.initial(), Level::High);
        assert_eq!(inv.level_at(1.5), Level::Low);
        let d = a.delayed(0.5);
        assert_eq!(d.toggles(), &[1.5, 2.5]);
    }

    proptest! {
        #[test]
        fn mismatch_symmetric(times_a in proptest::collection::vec(0.0..100.0f64, 0..8),
                              times_b in proptest::collection::vec(0.0..100.0f64, 0..8)) {
            let mut ta = times_a; ta.sort_by(f64::total_cmp); ta.dedup();
            let mut tb = times_b; tb.sort_by(f64::total_cmp); tb.dedup();
            let a = DigitalTrace::new(Level::Low, ta).unwrap();
            let b = DigitalTrace::new(Level::High, tb).unwrap();
            let ab = a.mismatch_time(&b, 0.0, 100.0);
            let ba = b.mismatch_time(&a, 0.0, 100.0);
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        #[test]
        fn mismatch_self_is_zero(times in proptest::collection::vec(0.0..100.0f64, 0..8)) {
            let mut t = times; t.sort_by(f64::total_cmp); t.dedup();
            let a = DigitalTrace::new(Level::Low, t).unwrap();
            prop_assert!(a.mismatch_time(&a, 0.0, 100.0) < 1e-12);
        }

        #[test]
        fn mismatch_triangle_inequality(
            xs in proptest::collection::vec(0.0..50.0f64, 0..6),
            ys in proptest::collection::vec(0.0..50.0f64, 0..6),
            zs in proptest::collection::vec(0.0..50.0f64, 0..6)) {
            let mk = |mut v: Vec<f64>| { v.sort_by(f64::total_cmp); v.dedup(); DigitalTrace::new(Level::Low, v).unwrap() };
            let (a, b, c) = (mk(xs), mk(ys), mk(zs));
            let ab = a.mismatch_time(&b, 0.0, 60.0);
            let bc = b.mismatch_time(&c, 0.0, 60.0);
            let ac = a.mismatch_time(&c, 0.0, 60.0);
            // Symmetric-difference measure satisfies the triangle inequality.
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn level_at_consistent_with_final(times in proptest::collection::vec(0.0..10.0f64, 0..10)) {
            let mut t = times; t.sort_by(f64::total_cmp); t.dedup();
            let a = DigitalTrace::new(Level::Low, t).unwrap();
            prop_assert_eq!(a.level_at(1e9), a.final_level());
        }
    }
}
