//! The analog realization of a NOR-mapped circuit must settle to the same
//! boolean function as the gate-level netlist, for random input vectors —
//! the bridge between the logical and electrical worlds every experiment
//! rests on.

use std::collections::HashMap;

use nanospice::{Dc, Engine, Stimulus};
use sigchar::{build_analog, AnalogOptions};
use sigcircuit::Benchmark;
use sigrepro::digital;
use sigwave::Level;

#[test]
fn c17_analog_settles_to_boolean_function() {
    let bench = Benchmark::by_name("c17").expect("benchmark");
    let circuit = &bench.nor_mapped;
    let mut rng = digital::rng(99);
    for _ in 0..4 {
        let bits = digital::random_bits(circuit, &mut rng);
        let expect = digital::eval_outputs(circuit, &bits);

        let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
        let mut init = HashMap::new();
        for (&net, &bit) in circuit.inputs().iter().zip(&bits) {
            stimuli.insert(net, Box::new(Dc(if bit { 0.8 } else { 0.0 })));
            init.insert(net, Level::from_bool(bit));
        }
        let analog =
            build_analog(circuit, stimuli, &init, &AnalogOptions::default()).expect("build");
        let probes: Vec<String> = circuit
            .outputs()
            .iter()
            .map(|o| analog.probe_name(*o).to_string())
            .collect();
        let probe_refs: Vec<&str> = probes.iter().map(String::as_str).collect();
        let res = Engine::default()
            .run(&analog.network, 0.0, 2e-10, &probe_refs)
            .expect("run");
        for (o, e) in circuit.outputs().iter().zip(&expect) {
            let v = res
                .waveform(analog.probe_name(*o))
                .expect("probed")
                .value_at(2e-10);
            let logical = v > 0.4;
            assert_eq!(
                logical,
                *e,
                "output {} settled to {v:.3} V for inputs {bits:?}",
                circuit.net_name(*o)
            );
        }
    }
}

#[test]
fn nor_mapped_benchmarks_equal_originals_logically() {
    for name in ["c17", "c499", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        // Sampled smoke parity; `tests/equiv_proof.rs` upgrades this
        // same claim to a SAT proof over all input assignments.
        digital::assert_agree_on_random(&bench.original, &bench.nor_mapped, 20, 123);
        assert!(bench.nor_mapped.is_nor_only(), "{name} not NOR-only");
    }
}
