//! Scaled checks of the paper's headline claims (Sec. V-C):
//!
//! 1. the sigmoid prototype is substantially faster than the analog
//!    simulator,
//! 2. at short inter-transition times the sigmoid prototype's `t_err` beats
//!    the digital baseline,
//! 3. the sigmoid advantage shrinks as inter-transition times grow.
//!
//! These run on c17 with a handful of seeds; the full-scale version is
//! `cargo run --release -p sigbench --bin table1`.

use std::path::PathBuf;

use nanospice::EngineConfig;
use sigchar::{AnalogOptions, DelayTable};
use sigcircuit::Benchmark;
use sigsim::{
    compare_circuit, random_stimuli, train_models_cached, HarnessConfig, PipelineConfig,
    StimulusSpec,
};

/// Shared fixture: decent (not CI-tiny) models, cached across tests.
fn models_and_delays() -> (sigsim::GateModels, DelayTable) {
    let path = PathBuf::from("target/sigmodels/claims.json");
    let config = PipelineConfig {
        characterization: sigchar::CharacterizationConfig {
            sweep: sigchar::PulseSweep {
                min: 5e-12,
                max: 20e-12,
                step: 5e-12,
                t0: 60e-12,
            },
            chain_targets: 4,
            ..sigchar::CharacterizationConfig::default()
        },
        ..PipelineConfig::default()
    };
    let trained = train_models_cached(&path, &config).expect("pipeline");
    let delays = DelayTable::measure(1..=4, &AnalogOptions::default(), &EngineConfig::default())
        .expect("delays");
    (trained.gate_models(), delays)
}

fn mean_errors(
    spec: &StimulusSpec,
    models: &sigsim::GateModels,
    delays: &DelayTable,
    runs: usize,
) -> (f64, f64, f64) {
    let bench = Benchmark::by_name("c17").expect("benchmark");
    let mut sig = 0.0;
    let mut dig = 0.0;
    let mut speedup = 0.0;
    for r in 0..runs {
        let mut rng = sigrepro::digital::rng(1000 + r as u64);
        let stimuli = random_stimuli(&bench.nor_mapped, spec, &mut rng);
        let outcome = compare_circuit(
            &bench.nor_mapped,
            &stimuli,
            models,
            delays,
            &HarnessConfig::default(),
        )
        .expect("comparison");
        sig += outcome.t_err_sigmoid;
        dig += outcome.t_err_digital;
        speedup += outcome.wall_analog.as_secs_f64() / outcome.wall_sigmoid.as_secs_f64();
    }
    (sig / runs as f64, dig / runs as f64, speedup / runs as f64)
}

#[test]
fn sigmoid_beats_digital_on_fast_stimuli_and_trails_analog_speed() {
    let (models, delays) = models_and_delays();
    let fast = StimulusSpec::fast();
    let (sig_fast, dig_fast, speedup) = mean_errors(&fast, &models, &delays, 3);

    // Claim 2: better accuracy than the digital baseline at fast stimuli.
    assert!(
        sig_fast < dig_fast,
        "sigmoid {sig_fast:.3e}s should beat digital {dig_fast:.3e}s at (20,10)ps"
    );
    // Claim 1: far faster than the analog reference.
    assert!(speedup > 5.0, "speedup over analog only {speedup:.1}x");

    // Claim 3: the *relative* advantage shrinks as µt grows.
    let slow = StimulusSpec::slow();
    let (sig_slow, dig_slow, _) = mean_errors(&slow, &models, &delays, 3);
    let ratio_fast = sig_fast / dig_fast;
    let ratio_slow = sig_slow / dig_slow;
    assert!(
        ratio_slow > ratio_fast,
        "advantage should shrink with µt: fast ratio {ratio_fast:.2}, slow ratio {ratio_slow:.2}"
    );
}
