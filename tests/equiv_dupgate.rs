//! Machine-checks the duplicate-gate-elimination premise from the
//! engine's compile pipeline: gates with identical (function, input
//! nets) may be aliased to a single instance without changing the
//! circuit's boolean function. The engine argues this "sound by
//! determinism"; here the claim is *proven* by miter on c1355, whose
//! NOR-mapped form carries the workspace's largest duplicate
//! population (535 duplicates among 2172 gates — the PR 7 case).

use std::collections::HashMap;

use sigcheck::verify_mapping;
use sigcircuit::{Benchmark, Circuit, CircuitBuilder, GateKind, NetId};

/// Structurally dedupes a circuit to a fixpoint: in topological order,
/// a gate whose (kind, remapped input nets) key was already seen is
/// dropped and its output aliased to the first instance's output.
/// Because aliasing happens while walking, later duplicates that only
/// become structural *after* their fanins alias are caught too.
/// Returns the deduped circuit and the number of aliased gates.
fn alias_duplicate_gates(circuit: &Circuit) -> (Circuit, usize) {
    let mut b = CircuitBuilder::new();
    let mut map: Vec<Option<NetId>> = vec![None; circuit.net_count()];
    for &i in circuit.inputs() {
        map[i.0] = Some(b.add_input(circuit.net_name(i)));
    }
    let mut seen: HashMap<(GateKind, Vec<NetId>), NetId> = HashMap::new();
    let mut aliased = 0usize;
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let ins: Vec<NetId> = g
            .inputs
            .iter()
            .map(|i| map[i.0].expect("topological order"))
            .collect();
        let key = (g.kind, ins.clone());
        let out = if let Some(&existing) = seen.get(&key) {
            aliased += 1;
            existing
        } else {
            let out = b.add_gate(g.kind, &ins, circuit.net_name(g.output));
            seen.insert(key, out);
            out
        };
        map[g.output.0] = Some(out);
    }
    for &o in circuit.outputs() {
        b.mark_output(map[o.0].expect("outputs are driven"));
    }
    (b.build().expect("aliasing preserves validity"), aliased)
}

/// The headline case: c1355's NOR-mapped form loses hundreds of gates
/// to aliasing, and the result is *proven* equivalent to both the
/// NOR-mapped circuit and the untouched original.
#[test]
fn c1355_duplicate_aliasing_is_proven_equivalent() {
    let bench = Benchmark::by_name("c1355").expect("benchmark");
    let (deduped, aliased) = alias_duplicate_gates(&bench.nor_mapped);
    assert!(
        aliased >= 400,
        "c1355's NOR form should carry hundreds of duplicates, found {aliased}"
    );
    assert_eq!(
        deduped.gates().len() + aliased,
        bench.nor_mapped.gates().len(),
        "every aliased gate disappears from the netlist"
    );

    let vs_mapped = verify_mapping(&bench.nor_mapped, &deduped).expect("ties");
    assert!(
        vs_mapped.is_equivalent(),
        "aliasing must preserve the NOR-mapped function: {:?}",
        vs_mapped.verdict
    );
    let vs_original = verify_mapping(&bench.original, &deduped).expect("ties");
    assert!(
        vs_original.is_equivalent(),
        "aliased circuit must still implement the original: {:?}",
        vs_original.verdict
    );
}

/// The smaller benchmarks go through the same proof, so the property is
/// not c1355-specific.
#[test]
fn aliasing_is_proven_equivalent_on_all_benchmarks() {
    for name in ["c17", "c499"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let (deduped, _) = alias_duplicate_gates(&bench.nor_mapped);
        let result = verify_mapping(&bench.nor_mapped, &deduped).expect("ties");
        assert!(
            result.is_equivalent(),
            "{name}: aliasing must preserve the function"
        );
    }
}
