//! Smoke coverage for the `examples/` directory: every example must at
//! least type-check, and the quickstart must complete end-to-end on its
//! small (fast-pipeline) configuration.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    // CARGO is set for integration tests; fall back to PATH lookup when the
    // binary is run outside of cargo.
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn every_example_type_checks() {
    let output = cargo()
        .args(["check", "--examples", "--quiet"])
        .current_dir(repo_root())
        .output()
        .expect("failed to spawn cargo check");
    assert!(
        output.status.success(),
        "`cargo check --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_completes_on_small_config() {
    let output = cargo()
        .args(["run", "--release", "--quiet", "--example", "quickstart"])
        .current_dir(repo_root())
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "quickstart failed:\n{}\n{}",
        stdout,
        String::from_utf8_lossy(&output.stderr)
    );
    // The example must reach its final report, not just start up.
    assert!(
        stdout.contains("error ratio:"),
        "quickstart did not print its comparison summary:\n{stdout}"
    );
}
