//! Workspace-level integration: the full pipeline — characterization,
//! training, delay extraction, three-way comparison — on ISCAS-85 c17.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nanospice::EngineConfig;
use sigchar::{AnalogOptions, DelayTable};
use sigcircuit::Benchmark;
use sigsim::{
    compare_circuit, final_levels_agree, random_stimuli, train_models_cached, HarnessConfig,
    PipelineConfig, SigmoidInputMode, StimulusSpec,
};

fn shared_models() -> sigsim::TrainedModels {
    // All integration tests share one cached artifact to keep the suite fast.
    let path = PathBuf::from("target/sigmodels/integration.json");
    train_models_cached(&path, &PipelineConfig::fast()).expect("pipeline")
}

#[test]
fn pipeline_to_comparison_on_c17() {
    let trained = shared_models();
    let models = trained.gate_models();
    let delays = DelayTable::measure(1..=4, &AnalogOptions::default(), &EngineConfig::default())
        .expect("delay extraction");
    let bench = Benchmark::by_name("c17").expect("benchmark");
    let mut rng = StdRng::seed_from_u64(11);
    let stimuli = random_stimuli(
        &bench.nor_mapped,
        &StimulusSpec::new(60e-12, 25e-12, 8),
        &mut rng,
    );
    let outcome = compare_circuit(
        &bench.nor_mapped,
        &stimuli,
        &models,
        &delays,
        &HarnessConfig::default(),
    )
    .expect("comparison");

    // Structural sanity of the comparison result.
    assert_eq!(outcome.outputs, 2);
    assert_eq!(outcome.bundles.len(), 2);
    assert!(outcome.window.duration() > 0.0);
    assert!(final_levels_agree(&outcome, 0.8), "settled levels disagree");

    // Both predictions must be far better than chance (< 25% of the window).
    let budget = outcome.window.duration() * outcome.outputs as f64;
    assert!(outcome.t_err_sigmoid < 0.25 * budget);
    assert!(outcome.t_err_digital < 0.25 * budget);

    // Speed claim (scaled): the sigmoid prediction is at least 5x faster
    // than the analog reference on the same machine.
    assert!(
        outcome.wall_analog.as_secs_f64() > 5.0 * outcome.wall_sigmoid.as_secs_f64(),
        "analog {:?} vs sigmoid {:?}",
        outcome.wall_analog,
        outcome.wall_sigmoid
    );
}

#[test]
fn same_stimulus_mode_runs() {
    let trained = shared_models();
    let models = trained.gate_models();
    let delays = DelayTable::measure(1..=4, &AnalogOptions::default(), &EngineConfig::default())
        .expect("delay extraction");
    let bench = Benchmark::by_name("c17").expect("benchmark");
    let mut rng = StdRng::seed_from_u64(5);
    let stimuli = random_stimuli(
        &bench.nor_mapped,
        &StimulusSpec::new(60e-12, 25e-12, 6),
        &mut rng,
    );
    let config = HarnessConfig {
        sigmoid_inputs: SigmoidInputMode::SameAsDigital,
        ..HarnessConfig::default()
    };
    let outcome = compare_circuit(&bench.nor_mapped, &stimuli, &models, &delays, &config)
        .expect("comparison");
    assert!(final_levels_agree(&outcome, 0.8));
}

#[test]
fn models_serialize_and_reload_identically() {
    let trained = shared_models();
    let path = PathBuf::from("target/sigmodels/integration.json");
    assert!(path.exists(), "cache artifact must exist after training");
    let reloaded = train_models_cached(&path, &PipelineConfig::fast()).expect("reload");
    let q = sigtom::TransferQuery {
        t: 1.2,
        a_in: -14.0,
        a_prev_out: 16.0,
    };
    assert_eq!(
        trained.gate_models().nor_fo2.transfer.predict(q),
        reloaded.gate_models().nor_fo2.transfer.predict(q),
    );
}
