//! Cross-crate integration: analog waveforms produced by `nanospice` are
//! faithfully recovered by `sigfit`'s sigmoidal approximations (the Sec. II
//! pipeline), across a range of pulse shapes.

use std::collections::HashMap;

use nanospice::{EngineConfig, Pwl, Stimulus};
use sigchar::{run_chain, AnalogOptions, ChainGate, CharChain, PulseSpec};
use sigfit::{fit_waveform, FitOptions};
use sigwave::Level;

#[test]
fn chain_waveforms_fit_with_small_rms() {
    let chain = CharChain::new(ChainGate::Nor, 3, 1);
    for (ta, tb, tc) in [(15.0, 12.0, 18.0), (20.0, 20.0, 20.0), (12.0, 15.0, 12.0)] {
        let spec = PulseSpec {
            t0: 60e-12,
            ta: ta * 1e-12,
            tb: tb * 1e-12,
            tc: tc * 1e-12,
        };
        let run = run_chain(
            &chain,
            &spec,
            &AnalogOptions::default(),
            &EngineConfig::default(),
        )
        .expect("chain run");
        for (i, wave) in run.waveforms.iter().enumerate() {
            let fit = fit_waveform(wave, &FitOptions::default()).expect("fit");
            assert!(
                fit.rms_error < 0.04,
                "stage {i} of ({ta},{tb},{tc}): rms {} V too large",
                fit.rms_error
            );
            // Crossing times of fit and waveform agree to sub-picosecond.
            let wave_crossings = wave.crossings(0.4);
            let fit_digital = fit.trace.digitize(0.4);
            assert_eq!(wave_crossings.len(), fit_digital.len(), "stage {i}");
            for (w, f) in wave_crossings.iter().zip(fit_digital.toggles()) {
                assert!(
                    (w.0 - f).abs() < 1.0e-12,
                    "stage {i}: crossing {:.2}ps vs fit {:.2}ps",
                    w.0 * 1e12,
                    f * 1e12
                );
            }
        }
    }
}

#[test]
fn heaviside_source_round_trips_through_fit() {
    // A clean step through pulse shaping: the fitted slope must be finite
    // and in the physically calibrated range, the crossing within 1 ps.
    let trace = sigwave::DigitalTrace::new(Level::Low, vec![80e-12]).expect("trace");
    let chain = CharChain::new(ChainGate::Inverter, 1, 1);
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(
        chain.input,
        Box::new(Pwl::heaviside_train(&trace, 0.8, 1e-12)),
    );
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    let analog = sigchar::build_analog(&chain.circuit, stimuli, &init, &AnalogOptions::default())
        .expect("build");
    let shaped = analog.probe_name(chain.input).to_string();
    let res = nanospice::Engine::default()
        .run(&analog.network, 0.0, 2e-10, &[&shaped])
        .expect("run");
    let fit = fit_waveform(
        res.waveform(&shaped).expect("probed"),
        &FitOptions::default(),
    )
    .expect("fit");
    assert_eq!(fit.trace.len(), 1);
    let s = fit.trace.transitions()[0];
    assert!(s.is_rising());
    // Shaped edge slope: 20%-80% within 1..20 ps for this technology.
    let rise = s.transition_time_20_80();
    assert!(
        rise > 1e-12 && rise < 20e-12,
        "unphysical fitted slope: {rise:.2e} s"
    );
}
