//! Mutation-negative tests of the SAT equivalence checker: the solver
//! is itself under test here. Each case plants a single fault in a
//! mapped circuit — flip one gate's kind, swap one gate input to a
//! different net, or drop one inverter — and demands that `sigcheck`
//! (a) returns an inequivalence verdict, and (b) hands back a
//! counterexample that, replayed through *both* boolean evaluation and
//! the event-driven digital simulator, actually produces differing
//! outputs. A checker that proved mutants equivalent, or fabricated
//! witnesses, fails here.

use sigcheck::{verify_mapping, EquivVerdict};
use sigcircuit::{Benchmark, Circuit, CircuitBuilder, GateKind, NetId};
use sigrepro::digital::replay_witness;

/// How `rebuild` should copy one gate.
enum Edit {
    /// Emit a gate with this kind and these (already remapped) inputs.
    Replace(GateKind, Vec<NetId>),
    /// Skip the gate; alias its output to this (already remapped) net.
    Alias(NetId),
}

/// Rebuilds `circuit` gate by gate in topological order, letting `edit`
/// rewrite each gate as it is copied. `edit` receives the gate index,
/// its kind, and its inputs remapped into the new circuit's id space.
fn rebuild(circuit: &Circuit, mut edit: impl FnMut(usize, GateKind, &[NetId]) -> Edit) -> Circuit {
    let mut b = CircuitBuilder::new();
    let mut map: Vec<Option<NetId>> = vec![None; circuit.net_count()];
    for &i in circuit.inputs() {
        map[i.0] = Some(b.add_input(circuit.net_name(i)));
    }
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let ins: Vec<NetId> = g
            .inputs
            .iter()
            .map(|i| map[i.0].expect("topological order"))
            .collect();
        let out = match edit(gi, g.kind, &ins) {
            Edit::Replace(kind, new_ins) => b.add_gate(kind, &new_ins, circuit.net_name(g.output)),
            Edit::Alias(net) => net,
        };
        map[g.output.0] = Some(out);
    }
    for &o in circuit.outputs() {
        b.mark_output(map[o.0].expect("outputs are driven"));
    }
    b.build().expect("mutant is a valid circuit")
}

/// `true` if the two circuits differ on at least one of 256 sampled
/// input vectors — the guard that keeps every planted mutant *semantic*
/// (an equivalent mutant would make the SAT assertion vacuous).
fn sampled_difference(a: &Circuit, b: &Circuit) -> bool {
    use rand::{rngs::StdRng, RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x0DD5_EED5);
    for _ in 0..4 {
        let words: Vec<u64> = a.inputs().iter().map(|_| rng.next_u64()).collect();
        let na = a.eval_words(&words);
        let nb = b.eval_words(&words);
        let differs = a
            .outputs()
            .iter()
            .zip(b.outputs())
            .any(|(&oa, &ob)| na[oa.0] != nb[ob.0]);
        if differs {
            return true;
        }
    }
    false
}

/// Runs the full mutation protocol: verify, demand SAT (inequivalent),
/// then validate the witness through both simulation paths.
fn assert_refuted_with_valid_witness(original: &Circuit, mutant: &Circuit, what: &str) {
    let result = verify_mapping(original, mutant).expect("interfaces still tie");
    assert_eq!(
        result.verdict,
        EquivVerdict::Inequivalent,
        "{what}: the checker must refute a semantic mutant"
    );
    let cex = result
        .counterexample
        .expect("inequivalence always carries a counterexample");
    let replay = replay_witness(original, mutant, &cex.inputs);
    assert!(
        !replay.differing.is_empty(),
        "{what}: witness must distinguish the circuits under replay"
    );
    assert!(
        replay.differing.contains(&cex.output),
        "{what}: witness must distinguish at the attributed output {}",
        cex.output_name
    );
    assert_eq!(
        replay.original_outputs[cex.output], cex.original_value,
        "{what}: reported original value must match replay"
    );
    assert_eq!(
        replay.mapped_outputs[cex.output], cex.mapped_value,
        "{what}: reported mapped value must match replay"
    );
    assert_ne!(cex.original_value, cex.mapped_value);
}

/// Flips the kind of one gate (the first site producing a semantic
/// change): NOR↔NAND on two-input gates, AND↔OR, XOR↔XNOR, INV↔BUF.
fn flip_one_gate_kind(mapped: &Circuit) -> Option<Circuit> {
    for (target, g) in mapped.gates().iter().enumerate() {
        let flipped = match (g.kind, g.inputs.len()) {
            (GateKind::Nor, 2) => GateKind::Nand,
            (GateKind::Nand, 2) => GateKind::Nor,
            (GateKind::And, 2) => GateKind::Or,
            (GateKind::Or, 2) => GateKind::And,
            (GateKind::Xor, 2) => GateKind::Xnor,
            (GateKind::Xnor, 2) => GateKind::Xor,
            (GateKind::Inv, 1) => GateKind::Buf,
            _ => continue,
        };
        let mutant = rebuild(mapped, |gi, kind, ins| {
            Edit::Replace(if gi == target { flipped } else { kind }, ins.to_vec())
        });
        if sampled_difference(mapped, &mutant) {
            return Some(mutant);
        }
    }
    None
}

/// Swaps one input of one gate to a primary input it doesn't read.
fn swap_one_input(mapped: &Circuit) -> Option<Circuit> {
    for target in 0..mapped.gates().len() {
        let g = &mapped.gates()[target];
        let Some(sub_pos) = mapped.inputs().iter().position(|i| !g.inputs.contains(i)) else {
            continue;
        };
        let mutant = rebuild(mapped, |gi, kind, ins| {
            if gi == target {
                let mut swapped = ins.to_vec();
                // `rebuild` interns the primary inputs first, in order,
                // so the substitute's remapped id is positional.
                swapped[0] = NetId(sub_pos);
                Edit::Replace(kind, swapped)
            } else {
                Edit::Replace(kind, ins.to_vec())
            }
        });
        if sampled_difference(mapped, &mutant) {
            return Some(mutant);
        }
    }
    None
}

/// Drops one inverter: its fanout reads the inverter's input directly.
fn drop_one_inverter(mapped: &Circuit) -> Option<Circuit> {
    for target in 0..mapped.gates().len() {
        let g = &mapped.gates()[target];
        let is_inverter =
            g.kind == GateKind::Inv || (g.kind == GateKind::Nor && g.inputs.len() == 1);
        if !is_inverter {
            continue;
        }
        let mutant = rebuild(mapped, |gi, kind, ins| {
            if gi == target {
                Edit::Alias(ins[0])
            } else {
                Edit::Replace(kind, ins.to_vec())
            }
        });
        if sampled_difference(mapped, &mutant) {
            return Some(mutant);
        }
    }
    None
}

#[test]
fn flipped_gate_kinds_are_refuted() {
    for name in ["c17", "c499"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        for (tag, mapped) in [("nor", &bench.nor_mapped), ("native", &bench.native)] {
            let mutant = flip_one_gate_kind(mapped)
                .unwrap_or_else(|| panic!("{name}/{tag}: no semantic kind-flip site"));
            assert_refuted_with_valid_witness(
                &bench.original,
                &mutant,
                &format!("{name}/{tag}/kind-flip"),
            );
        }
    }
}

#[test]
fn swapped_inputs_are_refuted() {
    for name in ["c17", "c499"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let mutant = swap_one_input(&bench.nor_mapped)
            .unwrap_or_else(|| panic!("{name}: no semantic input-swap site"));
        assert_refuted_with_valid_witness(&bench.original, &mutant, &format!("{name}/input-swap"));
    }
}

#[test]
fn dropped_inverters_are_refuted() {
    for name in ["c17", "c499", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let mutant = drop_one_inverter(&bench.nor_mapped)
            .unwrap_or_else(|| panic!("{name}: no semantic inverter-drop site"));
        assert_refuted_with_valid_witness(
            &bench.original,
            &mutant,
            &format!("{name}/inverter-drop"),
        );
    }
}

/// The harness itself is honest: the *unmutated* mapped circuit still
/// verifies, so refutations above cannot stem from a broken baseline.
#[test]
fn unmutated_baselines_still_verify() {
    let bench = Benchmark::by_name("c17").expect("benchmark");
    let result = verify_mapping(&bench.original, &bench.nor_mapped).expect("ties");
    assert_eq!(result.verdict, EquivVerdict::Equivalent);
}
