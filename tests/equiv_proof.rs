//! The SAT proof harness: every mapping policy on every benchmark (and
//! on random DAGs) is *proven* boolean-equivalent to the original, not
//! merely sampled. This is the acceptance criterion of the `sigcheck`
//! subsystem — it converts the repo's trust model for circuit
//! transformations from "parity on sampled stimuli" to "exhaustive
//! boolean proof".

use proptest::{prop_assert, prop_assert_eq, proptest};
use sigcheck::{verify_policy, EquivVerdict, Miter, MiterVerdict, OutputVerdict};
use sigcircuit::{Benchmark, Circuit, CircuitBuilder, GateKind, MappingPolicy};
use sigrepro::digital::{assert_agree_on_random, random_dag, with_inverted_output};

/// Every benchmark × every mapping policy: the miter must be UNSAT,
/// with every single output individually proven.
#[test]
fn all_benchmarks_proven_under_both_policies() {
    for name in ["c17", "c499", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        for policy in [MappingPolicy::NorOnly, MappingPolicy::Native] {
            let result = verify_policy(&bench.original, policy).expect("interface ties");
            assert_eq!(
                result.verdict,
                EquivVerdict::Equivalent,
                "{name}/{policy}: mapping must be proven equivalent \
                 (counterexample: {:?})",
                result.counterexample
            );
            for check in &result.outputs {
                assert_eq!(
                    check.verdict,
                    OutputVerdict::Proven,
                    "{name}/{policy}: output {} not proven",
                    check.name
                );
            }
            // The sampled-parity layer must of course agree.
            assert_agree_on_random(
                &bench.original,
                &sigcircuit::map_with_policy(
                    &bench.original,
                    policy,
                    sigcircuit::NorMappingOptions::default(),
                ),
                8,
                0xBEEF ^ policy as u64,
            );
        }
    }
}

/// The benchmark struct's precomputed mapped forms are the same
/// circuits `verify_policy` re-derives; prove them directly too so the
/// cached artifacts can't drift from the mapper.
#[test]
fn precomputed_benchmark_mappings_are_proven() {
    for name in ["c17", "c499", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        for (tag, mapped) in [("nor_mapped", &bench.nor_mapped), ("native", &bench.native)] {
            let result = sigcheck::verify_mapping(&bench.original, mapped).expect("ties");
            assert!(
                result.is_equivalent(),
                "{name}.{tag}: expected proof, got {:?}",
                result.verdict
            );
        }
    }
}

/// The low-level miter API decides small circuits without sweeping:
/// a two-bit full adder against a NAND-only rebuild.
#[test]
fn direct_miter_decides_small_circuits() {
    let mut b = CircuitBuilder::new();
    let x = b.add_input("x");
    let y = b.add_input("y");
    let s = b.add_gate(GateKind::Xor, &[x, y], "s");
    let c = b.add_gate(GateKind::And, &[x, y], "c");
    b.mark_output(s);
    b.mark_output(c);
    let half_adder = b.build().unwrap();

    // NAND-only half adder.
    let mut b = CircuitBuilder::new();
    let x = b.add_input("x");
    let y = b.add_input("y");
    let n1 = b.add_gate(GateKind::Nand, &[x, y], "n1");
    let n2 = b.add_gate(GateKind::Nand, &[x, n1], "n2");
    let n3 = b.add_gate(GateKind::Nand, &[y, n1], "n3");
    let s = b.add_gate(GateKind::Nand, &[n2, n3], "s");
    let c = b.add_gate(GateKind::Inv, &[n1], "c");
    b.mark_output(s);
    b.mark_output(c);
    let nand_adder = b.build().unwrap();

    let miter = Miter::build(&half_adder, &nand_adder).expect("ties");
    let (verdict, stats) = miter.solve(u64::MAX);
    assert_eq!(verdict, MiterVerdict::Equivalent);
    assert!(stats.conflicts > 0, "a real proof takes some search");
}

/// Ground truth by exhaustion: circuits with ≤ 12 inputs are compared
/// on every one of the `2^n` input assignments (bit-parallel, 64 lanes
/// per word), inputs matched by name.
fn brute_force_equivalent(a: &Circuit, b: &Circuit) -> bool {
    let n = a.inputs().len();
    assert!(n <= 12, "brute force is capped at 12 inputs");
    assert_eq!(n, b.inputs().len());
    let perm: Vec<usize> = a
        .inputs()
        .iter()
        .map(|&i| {
            let name = a.net_name(i);
            b.inputs()
                .iter()
                .position(|&m| b.net_name(m) == name)
                .expect("inputs tie by name")
        })
        .collect();
    let total = 1u64 << n;
    let mut base = 0u64;
    while base < total {
        // Word w encodes assignments base..base+64 (lane k = base + k).
        let words_a: Vec<u64> = (0..n)
            .map(|i| {
                let mut w = 0u64;
                for k in 0..64u64.min(total - base) {
                    if (base + k) >> i & 1 == 1 {
                        w |= 1 << k;
                    }
                }
                w
            })
            .collect();
        let mut words_b = vec![0u64; n];
        for (i, &p) in perm.iter().enumerate() {
            words_b[p] = words_a[i];
        }
        let na = a.eval_words(&words_a);
        let nb = b.eval_words(&words_b);
        let lanes = 64u64.min(total - base);
        let mask = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
            if (na[oa.0] ^ nb[ob.0]) & mask != 0 {
                return false;
            }
        }
        base += 64;
    }
    true
}

proptest! {
    /// Random multi-kind DAGs are proven equivalent under BOTH mapping
    /// policies — the property form of the benchmark proofs above.
    #[test]
    fn random_dags_proven_under_both_policies(seed in 0u64..u64::MAX) {
        let dag = random_dag(seed, 6, 20);
        for policy in [MappingPolicy::NorOnly, MappingPolicy::Native] {
            let result = verify_policy(&dag, policy).expect("mapping ties interfaces");
            prop_assert!(
                result.is_equivalent(),
                "seed {seed:#x}/{policy}: got {:?}",
                result.verdict
            );
        }
    }

    /// Oracle property: on circuits small enough to enumerate (≤ 12
    /// inputs), the DPLL miter verdict must coincide with brute-force
    /// ground truth — for an equivalent partner (the NOR-mapped form)
    /// and an inequivalent one (an output inverted).
    #[test]
    fn dpll_verdicts_match_brute_force(seed in 0u64..u64::MAX) {
        let a = random_dag(seed, 12, 24);
        let equivalent = sigcircuit::map_with_policy(
            &a,
            MappingPolicy::NorOnly,
            sigcircuit::NorMappingOptions::default(),
        );
        let inequivalent = with_inverted_output(&a, 0);
        for (b, expect) in [(&equivalent, true), (&inequivalent, false)] {
            let truth = brute_force_equivalent(&a, b);
            prop_assert_eq!(truth, expect, "partner construction is wrong");
            let miter = Miter::build(&a, b).expect("ties");
            let (verdict, _) = miter.solve(u64::MAX);
            match verdict {
                MiterVerdict::Equivalent => prop_assert!(
                    truth,
                    "seed {seed:#x}: DPLL claims equivalent, brute force disagrees"
                ),
                MiterVerdict::Counterexample(bits) => {
                    prop_assert!(
                        !truth,
                        "seed {seed:#x}: DPLL claims inequivalent, brute force disagrees"
                    );
                    let va = a.eval(&bits);
                    let vb = b.eval(&miter.permute_inputs(&bits));
                    prop_assert!(va != vb, "seed {seed:#x}: counterexample fails replay");
                }
                MiterVerdict::Unknown => prop_assert!(
                    false,
                    "seed {seed:#x}: unbounded solve returned unknown"
                ),
            }
        }
    }
}
