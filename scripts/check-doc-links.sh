#!/usr/bin/env bash
# Checks that every intra-repo markdown link and bare-path doc reference
# in README.md, DESIGN.md, ROADMAP.md and docs/*.md points at a file
# that exists. No network access; external (http/https) links are
# ignored. Exit 1 with a list of broken references otherwise.
set -u
cd "$(dirname "$0")/.."

status=0
fail() {
    echo "BROKEN: $1 -> $2" >&2
    status=1
}

files=(README.md DESIGN.md ROADMAP.md docs/*.md)

for f in "${files[@]}"; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Markdown links: [text](target), skipping external URLs and anchors.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | "#"*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            fail "$f" "$target"
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*(\(.*\))/\1/')

    # Backtick-quoted repo paths that look like doc/source references,
    # e.g. `docs/protocol.md` or `crates/serve/src/protocol.rs`.
    while IFS= read -r path; do
        if [ ! -e "$path" ]; then
            fail "$f" "\`$path\`"
        fi
    done < <(grep -o '`[A-Za-z0-9_./-]*\.\(md\|rs\|toml\)`' "$f" |
        tr -d '\`' | sort -u)
done

if [ "$status" -eq 0 ]; then
    echo "doc links OK (${#files[@]} files checked)"
fi
exit "$status"
