#!/usr/bin/env bash
# Runs the simulator benchmark suite and exports every measured median to
# a machine-readable artifact: BENCH_simulator.json, a JSON object mapping
# benchmark name -> median nanoseconds per iteration (the vendored
# criterion harness's --json format; the file is rewritten after each
# benchmark, so an interrupted run still leaves a valid partial artifact).
#
# Usage: scripts/bench-export.sh [filter] [output.json]
#   filter  — optional benchmark-name substring (default: run everything;
#             pass e.g. `fleet_c1355` for just the fleet acceptance rows)
#   output  — artifact path (default: BENCH_simulator.json in the repo root)
#
# The fleet acceptance check of the perf work reads the exported rows
# `fleet_c1355/per_run_scalar_16_runs` and `fleet_c1355/fleet_16_runs`:
# their ratio is the fleet+SIMD speedup over the scalar per-run reference
# path and must be >= 4 on c1355.
set -eu
cd "$(dirname "$0")/.."

filter="${1:-}"
out="${2:-BENCH_simulator.json}"
# cargo runs the bench binary with its cwd at the package root, so a
# relative artifact path must be anchored to the repo root explicitly.
case "$out" in
/*) ;;
*) out="$(pwd)/$out" ;;
esac

cargo bench -p sigbench --bench simulator_speed -- ${filter:+"$filter"} --json "$out"

echo "wrote $out:"
cat "$out"
