#!/usr/bin/env bash
# Measures saturated service throughput for both transports and writes
# BENCH_service.json: an open-loop `sigload` sweep over connection
# counts against (a) the default epoll transport and (b) the legacy
# blocking thread-per-connection transport, on warm inline-c1355
# sigmoid traffic.
#
# Usage: scripts/bench-service.sh [duration_s] [output.json]
#   duration_s — per-sweep-point send window (default 20; the window
#                must be long enough that the post-deadline queue drain
#                does not dominate the blocking daemon's goodput)
#   output     — artifact path (default: BENCH_service.json in the root)
#
# Methodology (all throughput numbers are GOODPUT — successful
# responses per second; rejects count as errors, not throughput):
#   * traffic: `sim` frames carrying the c1355 netlist inline (the
#     realistic CAD-client shape, ~80 KB/frame, cache-hot via content
#     hash), pipeline window 32 per connection, open loop.
#   * both daemons: 1 scheduler worker, queue 256, ci models preloaded.
#   * epoll daemon additionally bounds per-connection in-flight frames
#     at 4 — its reactor PAUSES reading a connection at the bound, so
#     saturation never turns into decode-and-reject churn.
#   * the blocking daemon has no flow control: it decodes every frame
#     the clients push and rejects what the queue cannot hold, which is
#     exactly the failure mode the async transport removes.
# The acceptance row is speedup_at_64 (epoll/blocking goodput at 64
# connections): the PR target is >= 5.
set -eu
cd "$(dirname "$0")/.."

duration="${1:-20}"
out="${2:-BENCH_service.json}"
case "$out" in
/*) ;;
*) out="$(pwd)/$out" ;;
esac

sweep="1,4,16,64"
pipeline=32
epoll_addr=127.0.0.1:4741
block_addr=127.0.0.1:4742

cargo build --release -p sigserve

wait_up() {
    for _ in $(seq 1 150); do
        if ./target/release/sigctl ping --addr "$1" --id 1 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "bench-service: daemon on $1 never came up" >&2
    exit 1
}

warm() {
    # One closed-loop pass parses the inline netlist and compiles the
    # program so every sweep point below measures warm-cache serving.
    ./target/release/sigload --addr "$1" --circuit c1355 --inline \
        --models ci --batch-every 0 --connections 1 --requests 2 >/dev/null
}

echo "bench-service: measuring epoll transport on $epoll_addr"
./target/release/sigserve --addr "$epoll_addr" --preload ci \
    --workers 1 --queue 256 --max-inflight 4 &
epoll_pid=$!
wait_up "$epoll_addr"
warm "$epoll_addr"
./target/release/sigload --addr "$epoll_addr" --circuit c1355 --inline \
    --models ci --batch-every 0 --sweep "$sweep" --duration "$duration" \
    --pipeline "$pipeline" --label epoll --json > /tmp/bench-epoll.json
cat /tmp/bench-epoll.json
./target/release/sigctl shutdown --addr "$epoll_addr" --id 9 >/dev/null
wait "$epoll_pid"

echo "bench-service: measuring blocking transport on $block_addr"
./target/release/sigserve --addr "$block_addr" --preload ci \
    --workers 1 --queue 256 --transport blocking &
block_pid=$!
wait_up "$block_addr"
warm "$block_addr"
./target/release/sigload --addr "$block_addr" --circuit c1355 --inline \
    --models ci --batch-every 0 --sweep "$sweep" --duration "$duration" \
    --pipeline "$pipeline" --label blocking --json > /tmp/bench-blocking.json
cat /tmp/bench-blocking.json
./target/release/sigctl shutdown --addr "$block_addr" --id 9 >/dev/null
wait "$block_pid"

python3 - "$out" "$duration" <<'EOF'
import json, sys

out, duration = sys.argv[1], float(sys.argv[2])
epoll = json.load(open("/tmp/bench-epoll.json"))
blocking = json.load(open("/tmp/bench-blocking.json"))

def at(sweep, conns):
    for row in sweep["rows"]:
        if row["connections"] == conns:
            return row
    raise SystemExit(f"no row at {conns} connections")

speedup = at(epoll, 64)["throughput_rps"] / max(
    at(blocking, 64)["throughput_rps"], 1e-12)
artifact = {
    "bench": "service_saturation",
    "circuit": "c1355 (inline nor-mapped .bench, ~80 KB/frame)",
    "traffic": {
        "mode": "open-loop",
        "duration_s": duration,
        "pipeline": 32,
        "workers": 1,
        "queue": 256,
        "epoll_max_inflight": 4,
        "metric": "goodput (successful responses per second)",
    },
    "epoll": epoll,
    "blocking": blocking,
    "speedup_at_64": round(speedup, 2),
}
json.dump(artifact, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(f"wrote {out}: speedup_at_64 = {speedup:.2f}x")
EOF
